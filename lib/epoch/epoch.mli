(** Epoch-published snapshots: the engine's lock-free read path.

    {!Epoch_core} instantiated over [Stdlib.Atomic], with the sanitizer
    bracketing hooks and the registry metrics wired in.  One ['a t]
    publishes one store root; the engine's writer calls {!publish}
    inside its Exclusive window, and {!read} serves a query against the
    published version with no lock acquisition — one compare-and-set to
    enter an epoch, one to leave.

    The payload must be {e immutable} (persistent, path-copied): a
    published version is shared with every concurrent reader, in other
    domains included, so mutating it is a data race.  This is the same
    contract [checkpoint_concurrent] documents, now load-bearing for
    every query. *)

type 'a t

val create : ?slots:int -> name:string -> lsn:int -> 'a -> 'a t
(** A store publishing the given initial version.  [slots] (default 64,
    rounded up to a power of two) is the reader-slot count; readers
    hash to a slot by domain id, so slots only contend when domains
    collide mod [slots].  [name] labels the metrics and sanitizer
    reports.  Creating a store (re)registers its metrics collector
    under ["sdb_epoch:"^name]. *)

val read : 'a t -> ('a -> 'b) -> 'b
(** Enter an epoch, run [f] against the published version, exit.  The
    epoch is released on any exit, exceptional included.  [f] must not
    block on I/O (the sanitizer enforces this) and must not call
    {!publish}. *)

val read_with_lsn : 'a t -> ('a -> 'b) -> 'b * int
(** Like {!read}, also returning the LSN the version reflects — the
    payload and the LSN are from the {e same} version, the atomicity
    the locked route gets from holding Shared across both reads. *)

val publish : 'a t -> lsn:int -> 'a -> unit
(** Install the next version and retire the displaced one.  Single
    writer only: the engine calls this inside the Exclusive window, so
    publication order is commit order. *)

val reclaim : 'a t -> int
(** Reclaim whatever retired versions have become safe (also runs on
    every {!publish}); single writer only.  Returns the number freed. *)

val unsafe_reclaim_all : 'a t -> int
(** Reclaim ignoring reader slots — deliberately broken, for tests that
    verify the use-after-reclaim detector actually fires. *)

(** {1 Inspection} (racy snapshots — metrics, tests) *)

val active_readers : 'a t -> int
val retired_versions : 'a t -> int
val reclaimed_total : 'a t -> int
val advance_total : 'a t -> int
val reclaim_lag : 'a t -> int
