module type ATOM = sig
  type 'a t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val exchange : 'a t -> 'a -> 'a
  val compare_and_set : 'a t -> 'a -> 'a -> bool
  val fetch_and_add : int t -> int -> int
end

module type S = sig
  type 'a cell

  type 'a version = {
    payload : 'a;
    vlsn : int;
    mutable retired_at : int;
    mutable reclaimed : bool;
  }

  type 'a t

  val create : slots:int -> lsn:int -> 'a -> 'a t
  val enter : 'a t -> slot:int -> unit
  val exit_ : 'a t -> slot:int -> unit
  val load : 'a t -> 'a version
  val publish : 'a t -> lsn:int -> 'a -> unit
  val reclaim : 'a t -> int
  val unsafe_reclaim_all : 'a t -> int
  val current_epoch : 'a t -> int
  val active_readers : 'a t -> int
  val retired_count : 'a t -> int
  val reclaimed_total : 'a t -> int
  val advance_total : 'a t -> int
  val reclaim_lag : 'a t -> int
end

module Make (A : ATOM) = struct
  type 'a cell = 'a A.t

  type 'a version = {
    payload : 'a;
    vlsn : int;
    mutable retired_at : int;
    mutable reclaimed : bool;
  }

  (* A slot packs (epoch, reader count) in one int so registration is a
     single compare-and-set: epoch in the high bits, count in the low
     16.  Zero means empty — the epoch field starts at 1 so a genuine
     registration can never encode as 0. *)
  let count_bits = 16
  let count_mask = (1 lsl count_bits) - 1
  let pack ~epoch ~count = (epoch lsl count_bits) lor count
  let slot_epoch s = s lsr count_bits
  let slot_count s = s land count_mask

  type 'a t = {
    current : 'a version A.t;
    global : int A.t;
    slots : int A.t array;
    (* Retired but not yet reclaimed versions, newest first.  Written
       only by the single writer (publish/reclaim run inside the
       engine's Exclusive window), so no lock is needed. *)
    mutable retired : 'a version list;
    mutable reclaimed_count : int;
  }

  let create ~slots ~lsn payload =
    if slots <= 0 then invalid_arg "Epoch_core.create: slots must be positive";
    {
      current =
        A.make { payload; vlsn = lsn; retired_at = -1; reclaimed = false };
      global = A.make 1;
      slots = Array.init slots (fun _ -> A.make 0);
      retired = [];
      reclaimed_count = 0;
    }

  (* Claim the slot at the current global epoch, or piggyback on an
     existing registration.  The piggyback keeps the slot's (possibly
     older) epoch: a too-old registration only delays reclamation.  The
     ordering that makes reclamation safe: the global epoch is read
     BEFORE the slot claim lands, and the pointer is loaded after — so
     if this reader obtains a version v, the pointer load preceded the
     writer's exchange retiring v, which preceded the epoch advance
     producing v's retiring epoch e; hence the slot's epoch <= e and
     the slot is still registered, which blocks v's reclamation. *)
  let rec enter t ~slot =
    let s = t.slots.(slot) in
    let cur = A.get s in
    if cur = 0 then begin
      let g = A.get t.global in
      if not (A.compare_and_set s 0 (pack ~epoch:g ~count:1)) then
        enter t ~slot
    end
    else if slot_count cur = count_mask then
      invalid_arg "Epoch_core.enter: slot reader count overflow"
    else if not (A.compare_and_set s cur (cur + 1)) then enter t ~slot

  let rec exit_ t ~slot =
    let s = t.slots.(slot) in
    let cur = A.get s in
    if slot_count cur = 0 then
      invalid_arg "Epoch_core.exit_: exit without matching enter";
    let next = if slot_count cur = 1 then 0 else cur - 1 in
    if not (A.compare_and_set s cur next) then exit_ t ~slot

  let load t = A.get t.current

  (* The oldest epoch any registered slot carries; max_int when every
     slot is empty.  A retired version is reclaimable exactly when its
     retiring epoch is strictly below this floor. *)
  let registered_floor t =
    Array.fold_left
      (fun acc s ->
        let v = A.get s in
        if v = 0 then acc else min acc (slot_epoch v))
      max_int t.slots

  let free t drop =
    List.iter (fun v -> v.reclaimed <- true) drop;
    t.reclaimed_count <- t.reclaimed_count + List.length drop;
    List.length drop

  let reclaim t =
    let floor = registered_floor t in
    let keep, drop =
      List.partition (fun v -> v.retired_at >= floor) t.retired
    in
    t.retired <- keep;
    free t drop

  let unsafe_reclaim_all t =
    let drop = t.retired in
    t.retired <- [];
    free t drop

  let publish t ~lsn payload =
    let nv = { payload; vlsn = lsn; retired_at = -1; reclaimed = false } in
    let old = A.exchange t.current nv in
    (* Advance AFTER the exchange: any reader registered at or before
       the retiring epoch may still load [old]; readers registering
       after the advance can only load [nv] or newer. *)
    let e = A.fetch_and_add t.global 1 in
    old.retired_at <- e;
    t.retired <- old :: t.retired;
    ignore (reclaim t : int)

  let current_epoch t = A.get t.global

  let active_readers t =
    Array.fold_left (fun acc s -> acc + slot_count (A.get s)) 0 t.slots

  let retired_count t = List.length t.retired
  let reclaimed_total t = t.reclaimed_count
  let advance_total t = A.get t.global - 1

  let reclaim_lag t =
    match t.retired with
    | [] -> 0
    | l ->
      let oldest = List.fold_left (fun acc v -> min acc v.retired_at) max_int l in
      A.get t.global - oldest
end
