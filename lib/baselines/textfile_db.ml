module Fs = Sdb_storage.Fs

let technique = "text file rewrite"
let file_name = "database.txt"
let temp_name = "database.txt.tmp"

type t = { fs : Fs.t; table : (string, string) Hashtbl.t; mutable closed : bool }

(* Backslash escaping keeps tabs and newlines inside keys/values from
   breaking the line format. *)
let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i < n then
      if s.[i] = '\\' && i + 1 < n then begin
        (match s.[i + 1] with
        | '\\' -> Buffer.add_char buf '\\'
        | 't' -> Buffer.add_char buf '\t'
        | 'n' -> Buffer.add_char buf '\n'
        | c -> Buffer.add_char buf c);
        go (i + 2)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let parse_line line =
  match String.index_opt line '\t' with
  | None -> Error (Printf.sprintf "textfile_db: malformed line %S" line)
  | Some i ->
    Ok
      ( unescape (String.sub line 0 i),
        unescape (String.sub line (i + 1) (String.length line - i - 1)) )

let render table =
  let bindings =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf (escape k);
      Buffer.add_char buf '\t';
      Buffer.add_string buf (escape v);
      Buffer.add_char buf '\n')
    bindings;
  Buffer.contents buf

let open_ fs =
  let table = Hashtbl.create 64 in
  if fs.Fs.exists file_name then begin
    match Fs.read_file fs file_name with
    | exception Fs.Read_error { reason; _ } ->
      Error (Printf.sprintf "textfile_db: unreadable: %s (restore from backup)" reason)
    | contents ->
      let lines = String.split_on_char '\n' contents in
      let rec load = function
        | [] | [ "" ] -> Ok ()
        | line :: rest -> (
          match parse_line line with
          | Ok (k, v) ->
            Hashtbl.replace table k v;
            load rest
          | Error e -> Error e)
      in
      (match load lines with
      | Ok () ->
        (* A leftover temp file from a crashed update is simply stale. *)
        fs.Fs.remove temp_name;
        Ok { fs; table; closed = false }
      | Error e -> Error e)
  end
  else Ok { fs; table; closed = false }

let check t = if t.closed then Fs.io_fail "textfile_db: used after close"

(* The whole-file rewrite with atomic rename: crash-safe, O(db size). *)
let persist t =
  Fs.write_file t.fs temp_name (render t.table);
  t.fs.Fs.rename temp_name file_name

let get t k =
  check t;
  Hashtbl.find_opt t.table k

let set t k v =
  check t;
  Hashtbl.replace t.table k v;
  persist t

let remove t k =
  check t;
  if Hashtbl.mem t.table k then begin
    Hashtbl.remove t.table k;
    persist t
  end

let iter t f =
  check t;
  Hashtbl.iter f t.table

let length t =
  check t;
  Hashtbl.length t.table

let verify t =
  check t;
  if not (t.fs.Fs.exists file_name) then
    if Hashtbl.length t.table = 0 then Ok () else Error "textfile_db: file missing"
  else
    match Fs.read_file t.fs file_name with
    | exception Fs.Read_error { reason; _ } -> Error ("textfile_db: " ^ reason)
    | contents -> (
      let rec check_lines = function
        | [] | [ "" ] -> Ok ()
        | line :: rest -> (
          match parse_line line with Ok _ -> check_lines rest | Error e -> Error e)
      in
      check_lines (String.split_on_char '\n' contents))

let quiesce _ = ()
let close t = t.closed <- true
