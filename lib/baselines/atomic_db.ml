module P = Sdb_pickle.Pickle
module Fs = Sdb_storage.Fs
module Wal = Sdb_wal.Wal

let technique = "atomic commit (redo log + in place)"
let data_file = "atomic.db"
let log_file_name = "atomic.log"
let trim_threshold = 1 lsl 20

(* A redo record is the set of full page images one update writes. *)
let codec_images = P.list (P.pair P.int P.string)
let log_fp = P.fingerprint codec_images

type t = {
  fs : Fs.t;
  store : Paged_store.t;
  mutable log : Wal.Writer.t;
  mutable closed : bool;
}

let images_to_wire images =
  List.map (fun { Paged_store.index; bytes } -> (index, bytes)) images

let images_of_wire wire =
  List.map (fun (index, bytes) -> { Paged_store.index; bytes }) wire

(* Recovery: replay every committed redo record (idempotent physical
   redo), sync the repaired data file, then start a fresh log. *)
let recover fs store =
  if fs.Fs.exists log_file_name then begin
    match
      Wal.Reader.fold fs log_file_name ~fingerprint:log_fp
        ~policy:Wal.Reader.Stop_at_damage ~init:[] ~f:(fun acc entry ->
          images_of_wire (P.decode codec_images entry.Wal.Reader.payload) :: acc)
    with
    | Error e -> Error (Format.asprintf "atomic_db: %a" Wal.pp_error e)
    | Ok (batches, _outcome) ->
      if batches <> [] then begin
        List.iter
          (fun images -> Paged_store.apply store ~sync:false images)
          (List.rev batches);
        Paged_store.sync store
      end;
      Ok ()
  end
  else Ok ()

let fresh_log fs = Wal.Writer.create fs log_file_name ~fingerprint:log_fp

let open_ fs =
  match Paged_store.open_ fs ~file:data_file () with
  | Error e -> Error e
  | Ok store -> (
    match recover fs store with
    | Error e -> Error e
    | Ok () ->
      (* Trimming at open keeps restart idempotent and the log small. *)
      let log = fresh_log fs in
      Ok { fs; store; log; closed = false })

let check t = if t.closed then Fs.io_fail "atomic_db: used after close"

let trim t =
  (* Data was synced by the last apply; the history is now redundant. *)
  Wal.Writer.close t.log;
  t.log <- fresh_log t.fs

let commit t images =
  if images <> [] then begin
    (* Write 1: the commit record. *)
    ignore
      (Wal.Writer.append_sync t.log (P.encode codec_images (images_to_wire images))
        : int);
    (* Write 2: the data pages, in place. *)
    Paged_store.apply t.store ~sync:true images;
    if Wal.Writer.length t.log > trim_threshold then trim t
  end

let get t k =
  check t;
  Paged_store.get t.store k

let set t k v =
  check t;
  commit t (Paged_store.prepare_set t.store k v)

let remove t k =
  check t;
  commit t (Paged_store.prepare_remove t.store k)

let iter t f =
  check t;
  Paged_store.iter t.store f

let length t =
  check t;
  Paged_store.length t.store

let verify t =
  check t;
  Paged_store.verify t.store

let quiesce t =
  check t;
  trim t

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try Wal.Writer.close t.log with Fs.Io_error _ -> ());
    Paged_store.close t.store
  end
