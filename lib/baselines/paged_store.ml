module Fs = Sdb_storage.Fs

let default_page_size = 4096
let default_buckets = 64
let magic = "SDBPGST1"

type t = {
  fs_handle : Fs.random;
  psize : int;
  buckets : int;
  mutable pages : int;
  mutable closed : bool;
}

type page_image = { index : int; bytes : string }

exception Corrupt of string

let corrupt fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

(* FNV-1a, stable across runs (unlike Hashtbl.hash we must not depend
   on for an on-disk layout). *)
let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  Int64.to_int (Int64.logand !h 0x3FFFFFFFFFFFFFFFL)

(* ------------------------------------------------------------------ *)
(* Page codec: [next:u32][count:u16][records], record =
   [klen:u16][vlen:u16][key][value].                                   *)

let page_header = 6
let record_overhead = 4

let record_size k v = record_overhead + String.length k + String.length v

let records_size records =
  List.fold_left (fun acc (k, v) -> acc + record_size k v) 0 records

let fits psize records = page_header + records_size records <= psize

let encode_page psize next records =
  if not (fits psize records) then invalid_arg "Paged_store: page overflow";
  let b = Bytes.make psize '\x00' in
  Bytes.set_int32_le b 0 (Int32.of_int next);
  Bytes.set_uint16_le b 4 (List.length records);
  let pos = ref page_header in
  List.iter
    (fun (k, v) ->
      Bytes.set_uint16_le b !pos (String.length k);
      Bytes.set_uint16_le b (!pos + 2) (String.length v);
      Bytes.blit_string k 0 b (!pos + 4) (String.length k);
      Bytes.blit_string v 0 b (!pos + 4 + String.length k) (String.length v);
      pos := !pos + record_size k v)
    records;
  Bytes.unsafe_to_string b

let decode_page psize index s =
  if String.length s <> psize then corrupt "page %d: short page" index;
  let next = Int32.to_int (String.get_int32_le s 0) in
  let count = String.get_uint16_le s 4 in
  if next < 0 then corrupt "page %d: negative link" index;
  let rec go pos remaining acc =
    if remaining = 0 then (next, List.rev acc)
    else begin
      if pos + record_overhead > psize then corrupt "page %d: record overruns page" index;
      let klen = String.get_uint16_le s pos in
      let vlen = String.get_uint16_le s (pos + 2) in
      if pos + record_overhead + klen + vlen > psize then
        corrupt "page %d: record overruns page" index;
      let k = String.sub s (pos + record_overhead) klen in
      let v = String.sub s (pos + record_overhead + klen) vlen in
      go (pos + record_overhead + klen + vlen) (remaining - 1) ((k, v) :: acc)
    end
  in
  go page_header count []

(* ------------------------------------------------------------------ *)
(* Raw page I/O                                                        *)

let read_page t index =
  if index <= 0 || index >= t.pages then corrupt "page link %d out of range" index;
  let buf = Bytes.create t.psize in
  let rec fill got =
    if got < t.psize then begin
      let n = t.fs_handle.Fs.pread ~off:((index * t.psize) + got) buf got (t.psize - got) in
      if n = 0 then corrupt "page %d: truncated file" index;
      fill (got + n)
    end
  in
  fill 0;
  Bytes.unsafe_to_string buf

let check t = if t.closed then Fs.io_fail "Paged_store: used after close"

(* ------------------------------------------------------------------ *)
(* Open / create                                                       *)

let encode_header psize buckets =
  let b = Bytes.make psize '\x00' in
  Bytes.blit_string magic 0 b 0 (String.length magic);
  Bytes.set_int32_le b 8 (Int32.of_int psize);
  Bytes.set_int32_le b 12 (Int32.of_int buckets);
  Bytes.unsafe_to_string b

let open_ fs ~file ?(page_size = default_page_size) ?(buckets = default_buckets) () =
  if page_size < 64 then invalid_arg "Paged_store: page_size too small";
  if buckets < 1 then invalid_arg "Paged_store: buckets must be positive";
  let h = fs.Fs.open_random file in
  let size = h.Fs.rw_size () in
  if size = 0 then begin
    (* Fresh store: header plus empty bucket pages, one sync. *)
    h.Fs.pwrite ~off:0 (encode_header page_size buckets);
    let empty = encode_page page_size 0 [] in
    for b = 1 to buckets do
      h.Fs.pwrite ~off:(b * page_size) empty
    done;
    h.Fs.rw_sync ();
    Ok { fs_handle = h; psize = page_size; buckets; pages = buckets + 1; closed = false }
  end
  else begin
    let hdr = Bytes.create 16 in
    let got = h.Fs.pread ~off:0 hdr 0 16 in
    if got < 16 then Error "paged_store: truncated header"
    else if not (String.equal (Bytes.sub_string hdr 0 8) magic) then
      Error "paged_store: bad magic"
    else begin
      let psize = Int32.to_int (Bytes.get_int32_le hdr 8) in
      let nbuckets = Int32.to_int (Bytes.get_int32_le hdr 12) in
      if psize < 64 || nbuckets < 1 then Error "paged_store: implausible header"
      else if size mod psize <> 0 then
        Error "paged_store: file size not a whole number of pages"
      else
        Ok
          {
            fs_handle = h;
            psize;
            buckets = nbuckets;
            pages = size / psize;
            closed = false;
          }
    end
  end

let page_size t = t.psize
let npages t = t.pages

let record_fits t ~key ~value = page_header + record_size key value <= t.psize

let bucket_of t k = 1 + (fnv1a k mod t.buckets)

(* Materialize a bucket chain: [(index, next, records); ...]. *)
let read_chain t k =
  let rec go index acc seen =
    if List.mem index seen then corrupt "cyclic chain at page %d" index;
    let next, records = decode_page t.psize index (read_page t index) in
    let acc = (index, next, records) :: acc in
    if next = 0 then List.rev acc else go next acc (index :: seen)
  in
  go (bucket_of t k) [] []

let get t k =
  check t;
  let chain = read_chain t k in
  List.find_map
    (fun (_, _, records) ->
      List.find_map (fun (k', v) -> if String.equal k' k then Some v else None) records)
    chain

(* Diff-based update planning: edit the in-memory chain, then emit
   images only for pages whose contents changed. *)
let images_of_diff t before after =
  List.filter_map
    (fun (index, next, records) ->
      let unchanged =
        List.exists
          (fun (i, n, r) -> i = index && n = next && r = records)
          before
      in
      if unchanged then None
      else Some { index; bytes = encode_page t.psize next records })
    after

let prepare_set t k v =
  check t;
  if not (record_fits t ~key:k ~value:v) then
    invalid_arg "Paged_store: record larger than a page";
  let before = read_chain t k in
  let without =
    List.map
      (fun (i, n, records) ->
        (i, n, List.filter (fun (k', _) -> not (String.equal k' k)) records))
      before
  in
  (* Place into the first chain page with room. *)
  let rec place = function
    | [] -> None
    | (i, n, records) :: rest ->
      if fits t.psize ((k, v) :: records) then
        Some ((i, n, records @ [ (k, v) ]) :: rest)
      else Option.map (fun rest -> (i, n, records) :: rest) (place rest)
  in
  match place without with
  | Some after -> images_of_diff t before after
  | None ->
    (* Chain full: append an overflow page and link the tail to it. *)
    let fresh = t.pages in
    let after =
      List.map
        (fun (i, n, records) -> if n = 0 then (i, fresh, records) else (i, n, records))
        without
    in
    images_of_diff t before after
    @ [ { index = fresh; bytes = encode_page t.psize 0 [ (k, v) ] } ]

let prepare_remove t k =
  check t;
  let before = read_chain t k in
  let after =
    List.map
      (fun (i, n, records) ->
        (i, n, List.filter (fun (k', _) -> not (String.equal k' k)) records))
      before
  in
  images_of_diff t before after

let apply t ~sync images =
  check t;
  List.iter
    (fun { index; bytes } ->
      if String.length bytes <> t.psize then invalid_arg "Paged_store.apply: bad image";
      t.fs_handle.Fs.pwrite ~off:(index * t.psize) bytes;
      t.pages <- max t.pages (index + 1))
    images;
  if sync && images <> [] then t.fs_handle.Fs.rw_sync ()

let sync t =
  check t;
  t.fs_handle.Fs.rw_sync ()

let iter t f =
  check t;
  for b = 1 to t.buckets do
    let rec walk index seen =
      if List.mem index seen then corrupt "cyclic chain at page %d" index;
      let next, records = decode_page t.psize index (read_page t index) in
      List.iter (fun (k, v) -> f k v) records;
      if next <> 0 then walk next (index :: seen)
    in
    walk b []
  done

let length t =
  let n = ref 0 in
  iter t (fun _ _ -> incr n);
  !n

let verify t =
  match iter t (fun _ _ -> ()) with
  | () -> Ok ()
  | exception Corrupt m -> Error ("paged_store: " ^ m)
  | exception Fs.Read_error { offset; reason; _ } ->
    Error (Printf.sprintf "paged_store: damaged page at offset %d: %s" offset reason)

let close t =
  if not t.closed then begin
    t.closed <- true;
    t.fs_handle.Fs.rw_close ()
  end
