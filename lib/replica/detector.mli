(** Heartbeat failure detector: the alive → suspect → dead state
    machine, pure and synchronization-free.

    One instance tracks one peer.  The caller (the replica's health
    monitor) holds the peer mutex around every call and supplies
    monotonic time explicitly — which is also what lets
    [lib/schedcheck] drive this exact code under a virtual clock and
    exhaust its interleavings.

    Rules (the ones the schedcheck scenario verifies):

    - the {e only} transition into [Alive] is {!probe_succeeded} — a
      peer never revives by timeout, config reload, or any other path;
    - a probe failure demotes [Alive] to [Suspect] immediately, and to
      [Dead] once no success has been seen for [dead_after_s];
    - {!tick} (pure aging) only ever demotes: [Alive] → [Suspect] after
      [suspect_after_s] without a success, → [Dead] after
      [dead_after_s] — so suspicion is never lost while a probe is
      still in flight. *)

type state = Alive | Suspect | Dead

val state_to_string : state -> string

type config = {
  heartbeat_interval_s : float;  (** monitor's probe period *)
  suspect_after_s : float;
      (** no successful heartbeat for this long → [Suspect] *)
  dead_after_s : float;  (** … for this long → [Dead] *)
}

val default_config : config
(** 1 s heartbeats, suspect after 3 s, dead after 10 s. *)

val validate_config : config -> unit
(** [Invalid_argument] unless
    [0 < heartbeat_interval_s <= suspect_after_s <= dead_after_s]. *)

type transition = {
  tr_from : state;
  tr_to : state;
  tr_cause : [ `Success | `Failure | `Timeout ];
}

type t

val create : now:float -> config -> t
(** Starts [Alive] with a success assumed at [now]. *)

val state : t -> state
val last_ok_age : t -> now:float -> float
val probe_in_flight : t -> bool

val probe_started : t -> unit
(** Mark a heartbeat RPC in flight (introspection; transitions never
    depend on it). *)

val probe_succeeded : t -> now:float -> transition option
(** A heartbeat completed: record the success time and transition to
    [Alive].  Returns the transition when the state changed. *)

val probe_failed : t -> now:float -> transition option
(** A heartbeat errored or timed out. *)

val tick : t -> now:float -> transition option
(** Pure aging between probes; never promotes toward [Alive]. *)
