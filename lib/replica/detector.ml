type state = Alive | Suspect | Dead

let state_to_string = function
  | Alive -> "alive"
  | Suspect -> "suspect"
  | Dead -> "dead"

type config = {
  heartbeat_interval_s : float;
  suspect_after_s : float;
  dead_after_s : float;
}

let default_config =
  { heartbeat_interval_s = 1.0; suspect_after_s = 3.0; dead_after_s = 10.0 }

let validate_config c =
  if c.heartbeat_interval_s <= 0.0 then
    invalid_arg "Detector: heartbeat_interval_s <= 0";
  if c.suspect_after_s < c.heartbeat_interval_s then
    invalid_arg "Detector: suspect_after_s < heartbeat_interval_s";
  if c.dead_after_s < c.suspect_after_s then
    invalid_arg "Detector: dead_after_s < suspect_after_s"

type transition = {
  tr_from : state;
  tr_to : state;
  tr_cause : [ `Success | `Failure | `Timeout ];
}

type t = {
  config : config;
  mutable st : state;
  mutable last_ok_s : float;  (* monotonic (or virtual) time *)
  mutable inflight : bool;
}

let create ~now config =
  validate_config config;
  { config; st = Alive; last_ok_s = now; inflight = false }

let state t = t.st
let last_ok_age t ~now = Float.max 0.0 (now -. t.last_ok_s)
let probe_in_flight t = t.inflight
let probe_started t = t.inflight <- true

let move t cause to_ =
  if t.st = to_ then None
  else begin
    let tr = { tr_from = t.st; tr_to = to_; tr_cause = cause } in
    t.st <- to_;
    Some tr
  end

(* Demotion by age alone: the shared arbiter for [tick] and
   [probe_failed], so the two paths can never disagree on thresholds.
   Never returns a state better than the current one. *)
let demoted t ~now =
  let age = last_ok_age t ~now in
  if age >= t.config.dead_after_s then Dead
  else if age >= t.config.suspect_after_s then
    match t.st with Alive | Suspect -> Suspect | Dead -> Dead
  else t.st

let probe_succeeded t ~now =
  t.inflight <- false;
  t.last_ok_s <- now;
  move t `Success Alive

let probe_failed t ~now =
  t.inflight <- false;
  (* An explicit failure is stronger evidence than mere silence: it
     demotes Alive to Suspect at once, without waiting out
     suspect_after_s.  Dead still requires the full quiet period. *)
  let next =
    match demoted t ~now with
    | Alive -> Suspect
    | (Suspect | Dead) as s -> s
  in
  move t `Failure next

let tick t ~now = move t `Timeout (demoted t ~now)
