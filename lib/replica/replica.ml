module Ns = Sdb_nameserver.Nameserver
module Ns_data = Sdb_nameserver.Ns_data
module Proto = Sdb_rpc.Ns_protocol
module Rpc = Sdb_rpc.Rpc
module Backoff = Sdb_rpc.Backoff
module P = Sdb_pickle.Pickle
module Metrics = Sdb_obs.Metrics
module Mono = Sdb_util.Mono

let m_pushes =
  Metrics.counter "sdb_replica_pushes_total"
    ~help:"Updates pushed to peers (eager or anti-entropy)."

let m_push_failures =
  Metrics.counter "sdb_replica_push_failures_total"
    ~help:"Pushes that failed and marked the peer unreachable."

let m_full_transfers =
  Metrics.counter "sdb_replica_full_transfers_total"
    ~help:"Anti-entropy rounds that fell back to a full state transfer."

let m_overflows =
  Metrics.counter "sdb_replica_outbox_overflows_total"
    ~help:"Commits dropped from a full outbox (peer deferred to anti-entropy)."

let m_repairs =
  Metrics.counter "sdb_replica_repairs_total"
    ~help:"Stores rebuilt from a peer's full state (repair_from_peer)."

let m_heartbeats =
  Metrics.counter "sdb_replica_heartbeats_total"
    ~help:"Heartbeat probes answered by peers."

let m_heartbeat_failures =
  Metrics.counter "sdb_replica_heartbeat_failures_total"
    ~help:"Heartbeat probes that errored or timed out."

let m_transitions =
  Metrics.counter "sdb_replica_peer_transitions_total"
    ~help:"Failure-detector state transitions, across all peers."

let m_auto_catchups =
  Metrics.counter "sdb_replica_auto_catchups_total"
    ~help:"Anti-entropy rounds started by the health monitor."

(* The commit path must never do I/O: [on_commit] only appends to this
   bounded per-peer outbox; a dedicated sender thread drains it.  A
   peer that errors, times out, or overflows the outbox is marked
   lagging and parked until {!anti_entropy} resynchronizes it. *)
type peer = {
  p_id : string;
  mutable p_client : Proto.Client.t;
  mutable p_acked : int;  (* local LSNs below this are known applied *)
  mutable p_reachable : bool;
  mutable p_lagging : bool;  (* eager pipeline suspended *)
  p_backlog : Metrics.gauge;  (* LSN delta to the local tip *)
  p_depth : Metrics.gauge;  (* current outbox occupancy *)
  p_queue : (int * Ns.update) Queue.t Sdb_check.Guarded.t;
  p_capacity : int;
  p_mutex : Sdb_check.Mu.t;  (* guards every mutable peer field *)
  p_cond : Condition.t;
  mutable p_sending : bool;  (* sender has an RPC in flight *)
  mutable p_stop : bool;
  mutable p_thread : Thread.t option;
  mutable p_detector : Detector.t;  (* guarded by p_mutex *)
  p_state_g : Metrics.gauge;  (* detector state as 0/1/2 *)
  p_rtt : Metrics.histogram;  (* heartbeat round-trip time *)
  (* Catch-up pacing; touched only by the health-monitor thread. *)
  mutable p_catchup : Backoff.t option;
  mutable p_next_catchup_s : float;  (* monotonic *)
}

type peer_report = {
  peer_id : string;
  reachable : bool;
  lagging : bool;
  backlog : int;
  queued : int;
  health : Detector.state;
}

(* The health monitor: one thread probing every peer with the cheap
   [ping] verb each heartbeat interval, feeding a per-peer {!Detector},
   and — when enabled — running {!catch_up} for peers that are lagging
   or behind, paced by jittered exponential backoff so a dead peer is
   not hammered. *)
type health_config = {
  detector : Detector.config;
  auto_catch_up : bool;
  catch_up_backoff : Backoff.policy;
      (** pacing of repeated catch-up attempts against an unhealthy
          peer; reset on the first success *)
  catch_up_budget : Backoff.Budget.t;
      (** global limiter on monitor-initiated catch-ups *)
}

let default_health_config =
  {
    detector = Detector.default_config;
    auto_catch_up = true;
    catch_up_backoff = Backoff.default;
    catch_up_budget = Backoff.Budget.unlimited;
  }

type monitor = {
  mon_config : health_config;
  mon_mutex : Sdb_check.Mu.t;
  mutable mon_stop : bool;
  mutable mon_thread : Thread.t option;
}

type t = {
  replica_id : string;
  ns : Ns.t;
  peers_mutex : Sdb_check.Mu.t;
  mutable peer_list : peer list;
  mutable subscription : Ns.Db.subscription option;
  mutable health_monitor : monitor option;  (* guarded by peers_mutex *)
}

let default_outbox_capacity = 256

(* Forward one update through the peer's typed surface. *)
let push_update client (u : Ns.update) =
  match u with
  | Ns.Set_value (p, v) -> Proto.Client.set_value client p v
  | Ns.Write_subtree (p, tree) -> Proto.Client.write_subtree client p tree
  | Ns.Delete_subtree p -> Proto.Client.delete_subtree client p
  | Ns.Create p -> Proto.Client.create_name client p

let local_lsn t = (Ns.stats t.ns).Smalldb.lsn

(* Call with [p_mutex] held (the Guarded queue access checks it). *)
let refresh_gauges_locked peer ~tip =
  Metrics.set_gauge peer.p_backlog (float_of_int (max 0 (tip - peer.p_acked)));
  Metrics.set_gauge peer.p_depth
    (float_of_int (Queue.length (Sdb_check.Guarded.get peer.p_queue)))

let all_peers t =
  Sdb_check.Mu.with_lock t.peers_mutex (fun () -> t.peer_list)

(* ------------------------------------------------------------------ *)
(* The sender thread                                                   *)

let sender_loop t peer =
  let rec loop () =
    Sdb_check.Mu.lock peer.p_mutex;
    let queue () = Sdb_check.Guarded.get peer.p_queue in
    while Queue.is_empty (queue ()) && not peer.p_stop do
      Sdb_check.Mu.wait peer.p_cond peer.p_mutex
    done;
    if peer.p_stop then Sdb_check.Mu.unlock peer.p_mutex
    else begin
      (* Peek, don't pop: the in-flight entry must stay queued so the
         contiguity arithmetic in [on_commit]
         ([p_acked + Queue.length = next lsn]) keeps holding while the
         RPC is outstanding.  It is popped only once acknowledged. *)
      let lsn, u = Queue.peek (queue ()) in
      if lsn < peer.p_acked then begin
        (* Anti-entropy outran the outbox; the peer already has it. *)
        ignore (Queue.pop (queue ()) : int * Ns.update);
        Sdb_check.Mu.unlock peer.p_mutex;
        loop ()
      end
      else if lsn > peer.p_acked || peer.p_lagging || not peer.p_reachable
      then begin
        (* Gap or suspended pipeline: anti-entropy owns the catch-up. *)
        peer.p_lagging <- true;
        Queue.clear (queue ());
        refresh_gauges_locked peer ~tip:(local_lsn t);
        Condition.broadcast peer.p_cond;
        Sdb_check.Mu.unlock peer.p_mutex;
        loop ()
      end
      else begin
        peer.p_sending <- true;
        let client = peer.p_client in
        Sdb_check.Mu.unlock peer.p_mutex;
        (* The push is network I/O: the outbox mutex must be off. *)
        Sdb_check.assert_no_mutex_held_during_io ~site:"replica.sender.push";
        let ok =
          match push_update client u with
          | () -> true
          | exception Rpc.Rpc_error _ -> false
        in
        Sdb_check.Mu.lock peer.p_mutex;
        peer.p_sending <- false;
        if ok then begin
          if peer.p_acked = lsn then peer.p_acked <- lsn + 1;
          (* The front is still our entry unless an overflow cleared
             the queue mid-flight. *)
          (match Queue.peek_opt (queue ()) with
          | Some (l, _) when l = lsn ->
            ignore (Queue.pop (queue ()) : int * Ns.update)
          | _ -> ());
          Metrics.incr m_pushes
        end
        else begin
          peer.p_reachable <- false;
          peer.p_lagging <- true;
          Queue.clear (queue ());
          Metrics.incr m_push_failures
        end;
        refresh_gauges_locked peer ~tip:(local_lsn t);
        Condition.broadcast peer.p_cond;
        Sdb_check.Mu.unlock peer.p_mutex;
        loop ()
      end
    end
  in
  loop ()

(* Eager propagation rides the engine's committed-update stream, so
   every update reaches the peers no matter which code path committed
   it.  This runs on the updater's thread with no engine lock held and
   must stay O(1): enqueue or mark lagging, never touch the network. *)
let on_commit t lsn u =
  List.iter
    (fun peer ->
      Sdb_check.Mu.lock peer.p_mutex;
      let queue = Sdb_check.Guarded.get peer.p_queue in
      (if peer.p_reachable && not peer.p_lagging then begin
         let expected = peer.p_acked + Queue.length queue in
         if expected = lsn then begin
           if Queue.length queue >= peer.p_capacity then begin
             peer.p_lagging <- true;
             Queue.clear queue;
             Metrics.incr m_overflows
           end
           else begin
             Queue.push (lsn, u) queue;
             Condition.broadcast peer.p_cond
           end
         end
         else if expected < lsn then
           (* A racing commit notification slipped past; the eager
              pipeline is no longer contiguous. *)
           peer.p_lagging <- true
         (* expected > lsn: stale duplicate notification; ignore. *)
       end);
      refresh_gauges_locked peer ~tip:(lsn + 1);
      Sdb_check.Mu.unlock peer.p_mutex)
    (all_peers t)
  [@@sdb.noblock]

let create ~id ns =
  let t =
    {
      replica_id = id;
      ns;
      peers_mutex = Sdb_check.Mu.make "replica.peers";
      peer_list = [];
      subscription = None;
      health_monitor = None;
    }
  in
  t.subscription <- Some (Ns.Db.subscribe (Ns.db ns) (fun lsn u -> on_commit t lsn u));
  t

let id t = t.replica_id
let local t = t.ns

let add_peer ?acked_lsn ?(outbox_capacity = default_outbox_capacity) t ~id client =
  if outbox_capacity < 1 then invalid_arg "Replica.add_peer: outbox_capacity < 1";
  let acked = Option.value acked_lsn ~default:(local_lsn t) in
  let det_config =
    Sdb_check.Mu.with_lock t.peers_mutex (fun () ->
        match t.health_monitor with
        | Some m -> m.mon_config.detector
        | None -> Detector.default_config)
  in
  let p_mutex = Sdb_check.Mu.make "replica.peer" in
  let peer =
    {
      p_id = id;
      p_client = client;
      p_acked = acked;
      p_reachable = true;
      p_lagging = false;
      p_backlog =
        Metrics.gauge "sdb_replica_backlog"
          ~help:"Updates the peer has not yet acknowledged (LSN delta)."
          ~labels:[ ("replica", t.replica_id); ("peer", id) ];
      p_depth =
        Metrics.gauge "sdb_replica_outbox_depth"
          ~help:"Updates queued in the peer's outbox."
          ~labels:[ ("replica", t.replica_id); ("peer", id) ];
      p_queue =
        Sdb_check.Guarded.create ~by:p_mutex ~name:"replica.outbox"
          (Queue.create ());
      p_capacity = outbox_capacity;
      p_mutex;
      p_cond = Condition.create ();
      p_sending = false;
      p_stop = false;
      p_thread = None;
      p_detector = Detector.create ~now:(Mono.now_s ()) det_config;
      p_state_g =
        Metrics.gauge "sdb_replica_peer_state"
          ~help:"Failure-detector state of the peer (0 alive, 1 suspect, 2 dead)."
          ~labels:[ ("replica", t.replica_id); ("peer", id) ];
      p_rtt =
        Metrics.histogram "sdb_replica_heartbeat_rtt_seconds"
          ~help:"Heartbeat round-trip time to the peer."
          ~labels:[ ("replica", t.replica_id); ("peer", id) ];
      p_catchup = None;
      p_next_catchup_s = 0.0;
    }
  in
  Sdb_check.Mu.with_lock peer.p_mutex (fun () ->
      refresh_gauges_locked peer ~tip:(local_lsn t));
  peer.p_thread <- Some (Thread.create (fun () -> sender_loop t peer) ());
  Sdb_check.Mu.with_lock t.peers_mutex (fun () ->
      t.peer_list <- t.peer_list @ [ peer ])

let reconnect t ~id client =
  match List.find_opt (fun p -> String.equal p.p_id id) (all_peers t) with
  | None -> invalid_arg (Printf.sprintf "Replica.reconnect: unknown peer %S" id)
  | Some peer ->
    Sdb_check.Mu.with_lock peer.p_mutex (fun () ->
        peer.p_client <- client;
        peer.p_reachable <- true;
        (* Whatever the outbox held was meant for the dead connection;
           anti-entropy (or the next contiguous commit) resumes
           delivery. *)
        Queue.clear (Sdb_check.Guarded.get peer.p_queue);
        refresh_gauges_locked peer ~tip:(local_lsn t))

let update t u = Ns.Db.update (Ns.db t.ns) u
let set_value t path v = update t (Ns.Set_value (path, v))
let delete_subtree t path = update t (Ns.Delete_subtree path)

(* ------------------------------------------------------------------ *)
(* Anti-entropy                                                        *)

let catch_up t peer =
  (* Park the eager sender and wait out any in-flight push, so the
     catch-up RPCs cannot interleave with an eager push: out-of-order
     delivery of two assignments to one path would revert it. *)
  Sdb_check.Mu.lock peer.p_mutex;
  peer.p_lagging <- true;
  while peer.p_sending do
    Sdb_check.Mu.wait peer.p_cond peer.p_mutex
  done;
  Queue.clear (Sdb_check.Guarded.get peer.p_queue);
  let client = peer.p_client in
  let acked0 = peer.p_acked in
  Sdb_check.Mu.unlock peer.p_mutex;
  (* The whole catch-up conversation is network I/O. *)
  Sdb_check.assert_no_mutex_held_during_io ~site:"replica.catch_up";
  let outcome =
    if acked0 >= local_lsn t then `Caught_up acked0
    else
      match Ns.updates_since t.ns acked0 with
      | None -> (
        (* The log no longer covers the peer's position: ship a full
           snapshot. *)
        let tree, lsn = Ns.snapshot_with_lsn t.ns in
        Metrics.incr m_full_transfers;
        match Proto.Client.write_subtree client [] tree with
        | () -> `Caught_up lsn
        | exception Rpc.Rpc_error _ -> `Failed acked0)
      | Some entries -> (
        let rec replay acked = function
          | [] -> `Caught_up acked
          | (lsn, u) :: rest -> (
            match push_update client u with
            | () ->
              Metrics.incr m_pushes;
              replay (lsn + 1) rest
            | exception Rpc.Rpc_error _ -> `Failed acked)
        in
        replay acked0 entries)
  in
  Sdb_check.Mu.lock peer.p_mutex;
  (match outcome with
  | `Caught_up acked ->
    peer.p_acked <- max peer.p_acked acked;
    peer.p_reachable <- true;
    peer.p_lagging <- false
  | `Failed acked ->
    peer.p_acked <- max peer.p_acked acked;
    peer.p_reachable <- false;
    Metrics.incr m_push_failures);
  refresh_gauges_locked peer ~tip:(local_lsn t);
  Condition.broadcast peer.p_cond;
  Sdb_check.Mu.unlock peer.p_mutex

let anti_entropy t = List.iter (catch_up t) (all_peers t)

(* ------------------------------------------------------------------ *)
(* The health monitor                                                  *)

let detector_state_value = function
  | Detector.Alive -> 0.0
  | Detector.Suspect -> 1.0
  | Detector.Dead -> 2.0

(* Call with [p_mutex] held. *)
let refresh_state_locked peer =
  Metrics.set_gauge peer.p_state_g
    (detector_state_value (Detector.state peer.p_detector))

let note_transition tr =
  match tr with None -> () | Some (_ : Detector.transition) -> Metrics.incr m_transitions

(* One heartbeat probe.  The ping shares the peer's client with the
   eager sender — the client's own mutex serializes them — so a probe
   can queue behind an in-flight push; the client's recv deadline
   bounds that wait.  Returns the detector state after the probe. *)
let heartbeat _t peer =
  let client =
    Sdb_check.Mu.with_lock peer.p_mutex (fun () ->
        Detector.probe_started peer.p_detector;
        peer.p_client)
  in
  Sdb_check.assert_no_mutex_held_during_io ~site:"replica.health.ping";
  let t0 = Mono.now_s () in
  let outcome =
    match Proto.Client.ping client with
    | (_ : int) -> Ok (Mono.now_s () -. t0)
    | exception Rpc.Rpc_error _ -> Error ()
  in
  let now = Mono.now_s () in
  Sdb_check.Mu.with_lock peer.p_mutex (fun () ->
      (match outcome with
      | Ok rtt ->
        Metrics.incr m_heartbeats;
        Metrics.observe peer.p_rtt rtt;
        note_transition (Detector.probe_succeeded peer.p_detector ~now)
      | Error () ->
        Metrics.incr m_heartbeat_failures;
        note_transition (Detector.probe_failed peer.p_detector ~now));
      refresh_state_locked peer;
      Detector.state peer.p_detector)

(* Self-healing: a peer that is lagging or behind gets an automatic
   catch-up, paced by jittered exponential backoff while it keeps
   failing and reset on the first success.  Dead peers are only probed
   (cheap); replay resumes once a ping revives them. *)
let maybe_catch_up t mon peer st =
  let cfg = mon.mon_config in
  if cfg.auto_catch_up && st <> Detector.Dead then begin
    let behind =
      Sdb_check.Mu.with_lock peer.p_mutex (fun () ->
          peer.p_lagging || (not peer.p_reachable) || peer.p_acked < local_lsn t)
    in
    let now = Mono.now_s () in
    if behind && now >= peer.p_next_catchup_s then begin
      if Backoff.Budget.try_spend cfg.catch_up_budget then begin
        Metrics.incr m_auto_catchups;
        catch_up t peer;
        let healthy =
          Sdb_check.Mu.with_lock peer.p_mutex (fun () ->
              peer.p_reachable && not peer.p_lagging)
        in
        if healthy then begin
          (match peer.p_catchup with Some b -> Backoff.reset b | None -> ());
          peer.p_next_catchup_s <- 0.0
        end
        else begin
          let b =
            match peer.p_catchup with
            | Some b -> b
            | None ->
              let b = Backoff.start cfg.catch_up_backoff in
              peer.p_catchup <- Some b;
              b
          in
          peer.p_next_catchup_s <- Mono.now_s () +. Backoff.next_s b
        end
      end
      else
        (* Budget denied: re-check next round without burning more. *)
        peer.p_next_catchup_s <- now +. cfg.detector.Detector.heartbeat_interval_s
    end
  end

let monitor_loop t mon =
  let interval = mon.mon_config.detector.Detector.heartbeat_interval_s in
  let stopped () =
    Sdb_check.Mu.with_lock mon.mon_mutex (fun () -> mon.mon_stop)
  in
  (* Sleep in slices so [stop_health] returns promptly. *)
  let rec sleep remaining =
    if remaining > 0.0 && not (stopped ()) then begin
      let dt = Float.min 0.05 remaining in
      Thread.delay dt;
      sleep (remaining -. dt)
    end
  in
  while not (stopped ()) do
    List.iter
      (fun peer ->
        if not (stopped ()) then begin
          let st = heartbeat t peer in
          maybe_catch_up t mon peer st
        end)
      (all_peers t);
    sleep interval
  done

let start_health ?(config = default_health_config) t =
  Detector.validate_config config.detector;
  Backoff.validate config.catch_up_backoff;
  Sdb_check.Mu.with_lock t.peers_mutex (fun () ->
      match t.health_monitor with
      | Some _ -> invalid_arg "Replica.start_health: monitor already running"
      | None ->
        let mon =
          {
            mon_config = config;
            mon_mutex = Sdb_check.Mu.make "replica.health";
            mon_stop = false;
            mon_thread = None;
          }
        in
        t.health_monitor <- Some mon;
        (* Re-arm every detector under the new thresholds. *)
        let now = Mono.now_s () in
        List.iter
          (fun peer ->
            Sdb_check.Mu.with_lock peer.p_mutex (fun () ->
                peer.p_detector <- Detector.create ~now config.detector;
                refresh_state_locked peer))
          t.peer_list;
        mon.mon_thread <- Some (Thread.create (fun () -> monitor_loop t mon) ()))

let stop_health t =
  let mon =
    Sdb_check.Mu.with_lock t.peers_mutex (fun () ->
        let m = t.health_monitor in
        t.health_monitor <- None;
        m)
  in
  match mon with
  | None -> ()
  | Some mon ->
    Sdb_check.Mu.with_lock mon.mon_mutex (fun () -> mon.mon_stop <- true);
    (match mon.mon_thread with
    | Some th ->
      Thread.join th;
      mon.mon_thread <- None
    | None -> ())

(* ------------------------------------------------------------------ *)
(* Introspection and lifecycle                                         *)

let peers t =
  let tip = local_lsn t in
  List.map
    (fun p ->
      Sdb_check.Mu.with_lock p.p_mutex (fun () ->
          {
            peer_id = p.p_id;
            reachable = p.p_reachable;
            lagging = p.p_lagging;
            backlog = max 0 (tip - p.p_acked);
            queued = Queue.length (Sdb_check.Guarded.get p.p_queue);
            health = Detector.state p.p_detector;
          }))
    (all_peers t)

let flush ?(timeout_s = 5.0) t =
  (* Monotonic: a wall-clock step (NTP, manual set) must not turn a
     5 s flush wait into an hour — or into zero. *)
  let deadline = Mono.now_s () +. timeout_s in
  let rec wait_peer peer =
    let state =
      Sdb_check.Mu.with_lock peer.p_mutex (fun () ->
          if peer.p_lagging || not peer.p_reachable then `Parked
          else if
            Queue.is_empty (Sdb_check.Guarded.get peer.p_queue)
            && not peer.p_sending
          then `Drained
          else `Busy)
    in
    match state with
    | `Drained -> true
    | `Parked -> false
    | `Busy ->
      if Mono.now_s () >= deadline then false
      else begin
        Thread.delay 0.001;
        wait_peer peer
      end
  in
  List.fold_left (fun acc peer -> wait_peer peer && acc) true (all_peers t)

let shutdown t =
  stop_health t;
  (match t.subscription with
  | Some s -> Ns.Db.unsubscribe (Ns.db t.ns) s
  | None -> ());
  t.subscription <- None;
  List.iter
    (fun peer ->
      Sdb_check.Mu.with_lock peer.p_mutex (fun () ->
          peer.p_stop <- true;
          Condition.broadcast peer.p_cond);
      (* Closing the client wakes a sender blocked in recv. *)
      (try Proto.Client.close peer.p_client with Rpc.Rpc_error _ -> ());
      match peer.p_thread with
      | Some th ->
        Thread.join th;
        peer.p_thread <- None
      | None -> ())
    (all_peers t)

(* ------------------------------------------------------------------ *)
(* Digests and hard-error recovery                                     *)

let digest ns =
  let tree, _lsn = Ns.snapshot_with_lsn ns in
  Digest.string (P.encode Ns_data.codec_tree tree)

let converged_with t peer_client =
  match Proto.Client.digest peer_client with
  | peer_digest -> String.equal (digest t.ns) peer_digest
  | exception Rpc.Rpc_error _ -> false

(* Resumable state transfer: [fetch_meta] pins the encoding of the
   peer's state at one LSN; chunks of exactly that string are fetched
   idempotently, so a connection reset mid-transfer costs at most one
   chunk — the client reconnects and the next [fetch_chunk] resumes at
   the first byte still missing.  When the peer's state moves past the
   pinned LSN the server answers [None] and the transfer restarts from
   fresh meta; the reassembled bytes are digest-verified before use. *)
let fetch_state_resumable ?(chunk_bytes = 64 * 1024) ?(max_restarts = 8)
    client =
  if chunk_bytes < 1 then
    invalid_arg "Replica.fetch_state_resumable: chunk_bytes < 1";
  let rec start restarts =
    if restarts > max_restarts then
      Error "state transfer: peer state kept moving; too many restarts"
    else
      match Proto.Client.fetch_meta client with
      | exception Rpc.Rpc_error m -> Error ("fetch_meta: " ^ m)
      | lsn, peer_digest, total ->
        let buf = Buffer.create (max total 16) in
        let rec chunks () =
          let off = Buffer.length buf in
          if off >= total then `Done
          else
            match
              Proto.Client.fetch_chunk client ~lsn ~offset:off ~len:chunk_bytes
            with
            | Some s when String.length s > 0 ->
              Buffer.add_string buf s;
              chunks ()
            | Some _ | None -> `Moved
            | exception Rpc.Rpc_error m -> `Err m
        in
        (match chunks () with
        | `Err m -> Error ("fetch_chunk: " ^ m)
        | `Moved -> start (restarts + 1)
        | `Done ->
          let bytes = Buffer.contents buf in
          if not (String.equal (Digest.string bytes) peer_digest) then
            (* Wrong bytes despite a stable LSN: refuse and refetch. *)
            start (restarts + 1)
          else (
            match P.decode_result Ns_data.codec_tree bytes with
            | Ok tree -> Ok (tree, lsn, peer_digest)
            | Error e -> Error ("state transfer: undecodable state: " ^ e)))
  in
  start 0

(* §4: "restoring its data from another replica".  Unlike [clone_from]
   this works on the {e damaged} store itself — including when [open_]
   refuses it (e.g. interior log damage with committed entries beyond):
   the transferred state is digest-verified, the wrecked files are
   wiped, and the store is rebuilt and checkpointed in place. *)
let repair_from_peer ?config ?chunk_bytes peer_client fs =
  match fetch_state_resumable ?chunk_bytes peer_client with
  | Error m -> Error ("repair_from_peer: " ^ m)
  | Ok (tree, _lsn, peer_digest) ->
    begin
      List.iter
        (fun f -> try fs.Sdb_storage.Fs.remove f with Sdb_storage.Fs.Io_error _ -> ())
        (fs.Sdb_storage.Fs.list_files ());
      match Ns.open_ ?config fs with
      | Error e -> Error ("repair_from_peer: " ^ e)
      | Ok ns ->
        Ns.write_subtree ns [] tree;
        Ns.checkpoint ns;
        Metrics.incr m_repairs;
        if String.equal (Ns.digest ns) peer_digest then Ok ns
        else begin
          Ns.close ns;
          Error "repair_from_peer: rebuilt state digest differs from peer"
        end
    end

let clone_from peer_client fs =
  match Proto.Client.snapshot peer_client with
  | exception Rpc.Rpc_error m -> Error ("clone_from: " ^ m)
  | tree, _lsn -> (
    match Ns.open_ fs with
    | Error e -> Error e
    | Ok ns ->
      Ns.write_subtree ns [] tree;
      (* A checkpoint makes the transferred state durable in one
         generation instead of one giant log entry. *)
      Ns.checkpoint ns;
      Ok ns)
