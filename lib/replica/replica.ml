module Ns = Sdb_nameserver.Nameserver
module Ns_data = Sdb_nameserver.Ns_data
module Proto = Sdb_rpc.Ns_protocol
module Rpc = Sdb_rpc.Rpc
module P = Sdb_pickle.Pickle
module Metrics = Sdb_obs.Metrics

let m_pushes =
  Metrics.counter "sdb_replica_pushes_total"
    ~help:"Updates pushed to peers (eager or anti-entropy)."

let m_push_failures =
  Metrics.counter "sdb_replica_push_failures_total"
    ~help:"Pushes that failed and marked the peer unreachable."

let m_full_transfers =
  Metrics.counter "sdb_replica_full_transfers_total"
    ~help:"Anti-entropy rounds that fell back to a full state transfer."

type peer = {
  p_id : string;
  mutable p_client : Proto.Client.t;
  mutable p_acked : int;  (* local LSNs below this are known applied *)
  mutable p_reachable : bool;
  p_backlog : Metrics.gauge;  (* LSN delta to the local tip *)
}

type peer_report = { peer_id : string; reachable : bool; backlog : int }

type t = {
  replica_id : string;
  ns : Ns.t;
  mutable peer_list : peer list;
  mutable subscription : Ns.Db.subscription option;
}

(* Forward one update through the peer's typed surface. *)
let push_update client (u : Ns.update) =
  match u with
  | Ns.Set_value (p, v) -> Proto.Client.set_value client p v
  | Ns.Write_subtree (p, tree) -> Proto.Client.write_subtree client p tree
  | Ns.Delete_subtree p -> Proto.Client.delete_subtree client p
  | Ns.Create p -> Proto.Client.create_name client p

(* Eager propagation rides the engine's committed-update stream, so
   every update reaches the peers no matter which code path committed
   it. *)
let set_backlog peer ~tip =
  Metrics.set_gauge peer.p_backlog (float_of_int (max 0 (tip - peer.p_acked)))

let on_commit t lsn u =
  List.iter
    (fun peer ->
      (* Only peers already at the tip can take this update directly;
         stragglers keep their ordered backlog for anti-entropy. *)
      (if peer.p_reachable && peer.p_acked = lsn then
         match push_update peer.p_client u with
         | () ->
           peer.p_acked <- lsn + 1;
           Metrics.incr m_pushes
         | exception Rpc.Rpc_error _ ->
           peer.p_reachable <- false;
           Metrics.incr m_push_failures);
      set_backlog peer ~tip:(lsn + 1))
    t.peer_list

let create ~id ns =
  let t = { replica_id = id; ns; peer_list = []; subscription = None } in
  t.subscription <- Some (Ns.Db.subscribe (Ns.db ns) (fun lsn u -> on_commit t lsn u));
  t

let id t = t.replica_id
let local t = t.ns

let local_lsn t = (Ns.stats t.ns).Smalldb.lsn

let add_peer ?acked_lsn t ~id client =
  let acked = Option.value acked_lsn ~default:(local_lsn t) in
  let peer =
    {
      p_id = id;
      p_client = client;
      p_acked = acked;
      p_reachable = true;
      p_backlog =
        Metrics.gauge "sdb_replica_backlog"
          ~help:"Updates the peer has not yet acknowledged (LSN delta)."
          ~labels:[ ("replica", t.replica_id); ("peer", id) ];
    }
  in
  set_backlog peer ~tip:(local_lsn t);
  t.peer_list <- t.peer_list @ [ peer ]

let reconnect t ~id client =
  match List.find_opt (fun p -> String.equal p.p_id id) t.peer_list with
  | None -> invalid_arg (Printf.sprintf "Replica.reconnect: unknown peer %S" id)
  | Some p ->
    p.p_client <- client;
    p.p_reachable <- true

let update t u = Ns.Db.update (Ns.db t.ns) u

let set_value t path v = update t (Ns.Set_value (path, v))
let delete_subtree t path = update t (Ns.Delete_subtree path)

let full_transfer t peer =
  let tree, lsn = Ns.snapshot_with_lsn t.ns in
  Metrics.incr m_full_transfers;
  (match Proto.Client.write_subtree peer.p_client [] tree with
  | () ->
    peer.p_acked <- lsn;
    peer.p_reachable <- true
  | exception Rpc.Rpc_error _ ->
    peer.p_reachable <- false;
    Metrics.incr m_push_failures);
  set_backlog peer ~tip:(local_lsn t)

let catch_up t peer =
  let tip = local_lsn t in
  if peer.p_acked < tip then begin
    (match Ns.updates_since t.ns peer.p_acked with
    | None -> full_transfer t peer
    | Some entries -> (
      try
        List.iter
          (fun (lsn, u) ->
            push_update peer.p_client u;
            peer.p_acked <- lsn + 1;
            Metrics.incr m_pushes)
          entries;
        peer.p_reachable <- true
      with Rpc.Rpc_error _ ->
        peer.p_reachable <- false;
        Metrics.incr m_push_failures));
    set_backlog peer ~tip:(local_lsn t)
  end
  else begin
    peer.p_reachable <- true;
    set_backlog peer ~tip
  end

let anti_entropy t = List.iter (catch_up t) t.peer_list

let peers t =
  let tip = local_lsn t in
  List.map
    (fun p ->
      { peer_id = p.p_id; reachable = p.p_reachable; backlog = max 0 (tip - p.p_acked) })
    t.peer_list

let digest ns =
  let tree, _lsn = Ns.snapshot_with_lsn ns in
  Digest.string (P.encode Ns_data.codec_tree tree)

let converged_with t peer_client =
  match Proto.Client.digest peer_client with
  | peer_digest -> String.equal (digest t.ns) peer_digest
  | exception Rpc.Rpc_error _ -> false

let clone_from peer_client fs =
  match Proto.Client.snapshot peer_client with
  | exception Rpc.Rpc_error m -> Error ("clone_from: " ^ m)
  | tree, _lsn -> (
    match Ns.open_ fs with
    | Error e -> Error e
    | Ok ns ->
      Ns.write_subtree ns [] tree;
      (* A checkpoint makes the transferred state durable in one
         generation instead of one giant log entry. *)
      Ns.checkpoint ns;
      Ok ns)
