module Ns = Sdb_nameserver.Nameserver
module Ns_data = Sdb_nameserver.Ns_data
module Proto = Sdb_rpc.Ns_protocol
module Rpc = Sdb_rpc.Rpc
module P = Sdb_pickle.Pickle
module Metrics = Sdb_obs.Metrics

let m_pushes =
  Metrics.counter "sdb_replica_pushes_total"
    ~help:"Updates pushed to peers (eager or anti-entropy)."

let m_push_failures =
  Metrics.counter "sdb_replica_push_failures_total"
    ~help:"Pushes that failed and marked the peer unreachable."

let m_full_transfers =
  Metrics.counter "sdb_replica_full_transfers_total"
    ~help:"Anti-entropy rounds that fell back to a full state transfer."

let m_overflows =
  Metrics.counter "sdb_replica_outbox_overflows_total"
    ~help:"Commits dropped from a full outbox (peer deferred to anti-entropy)."

let m_repairs =
  Metrics.counter "sdb_replica_repairs_total"
    ~help:"Stores rebuilt from a peer's full state (repair_from_peer)."

(* The commit path must never do I/O: [on_commit] only appends to this
   bounded per-peer outbox; a dedicated sender thread drains it.  A
   peer that errors, times out, or overflows the outbox is marked
   lagging and parked until {!anti_entropy} resynchronizes it. *)
type peer = {
  p_id : string;
  mutable p_client : Proto.Client.t;
  mutable p_acked : int;  (* local LSNs below this are known applied *)
  mutable p_reachable : bool;
  mutable p_lagging : bool;  (* eager pipeline suspended *)
  p_backlog : Metrics.gauge;  (* LSN delta to the local tip *)
  p_depth : Metrics.gauge;  (* current outbox occupancy *)
  p_queue : (int * Ns.update) Queue.t Sdb_check.Guarded.t;
  p_capacity : int;
  p_mutex : Sdb_check.Mu.t;  (* guards every mutable peer field *)
  p_cond : Condition.t;
  mutable p_sending : bool;  (* sender has an RPC in flight *)
  mutable p_stop : bool;
  mutable p_thread : Thread.t option;
}

type peer_report = {
  peer_id : string;
  reachable : bool;
  lagging : bool;
  backlog : int;
  queued : int;
}

type t = {
  replica_id : string;
  ns : Ns.t;
  peers_mutex : Sdb_check.Mu.t;
  mutable peer_list : peer list;
  mutable subscription : Ns.Db.subscription option;
}

let default_outbox_capacity = 256

(* Forward one update through the peer's typed surface. *)
let push_update client (u : Ns.update) =
  match u with
  | Ns.Set_value (p, v) -> Proto.Client.set_value client p v
  | Ns.Write_subtree (p, tree) -> Proto.Client.write_subtree client p tree
  | Ns.Delete_subtree p -> Proto.Client.delete_subtree client p
  | Ns.Create p -> Proto.Client.create_name client p

let local_lsn t = (Ns.stats t.ns).Smalldb.lsn

(* Call with [p_mutex] held (the Guarded queue access checks it). *)
let refresh_gauges_locked peer ~tip =
  Metrics.set_gauge peer.p_backlog (float_of_int (max 0 (tip - peer.p_acked)));
  Metrics.set_gauge peer.p_depth
    (float_of_int (Queue.length (Sdb_check.Guarded.get peer.p_queue)))

let all_peers t =
  Sdb_check.Mu.with_lock t.peers_mutex (fun () -> t.peer_list)

(* ------------------------------------------------------------------ *)
(* The sender thread                                                   *)

let sender_loop t peer =
  let rec loop () =
    Sdb_check.Mu.lock peer.p_mutex;
    let queue () = Sdb_check.Guarded.get peer.p_queue in
    while Queue.is_empty (queue ()) && not peer.p_stop do
      Sdb_check.Mu.wait peer.p_cond peer.p_mutex
    done;
    if peer.p_stop then Sdb_check.Mu.unlock peer.p_mutex
    else begin
      (* Peek, don't pop: the in-flight entry must stay queued so the
         contiguity arithmetic in [on_commit]
         ([p_acked + Queue.length = next lsn]) keeps holding while the
         RPC is outstanding.  It is popped only once acknowledged. *)
      let lsn, u = Queue.peek (queue ()) in
      if lsn < peer.p_acked then begin
        (* Anti-entropy outran the outbox; the peer already has it. *)
        ignore (Queue.pop (queue ()));
        Sdb_check.Mu.unlock peer.p_mutex;
        loop ()
      end
      else if lsn > peer.p_acked || peer.p_lagging || not peer.p_reachable
      then begin
        (* Gap or suspended pipeline: anti-entropy owns the catch-up. *)
        peer.p_lagging <- true;
        Queue.clear (queue ());
        refresh_gauges_locked peer ~tip:(local_lsn t);
        Condition.broadcast peer.p_cond;
        Sdb_check.Mu.unlock peer.p_mutex;
        loop ()
      end
      else begin
        peer.p_sending <- true;
        let client = peer.p_client in
        Sdb_check.Mu.unlock peer.p_mutex;
        (* The push is network I/O: the outbox mutex must be off. *)
        Sdb_check.assert_no_mutex_held_during_io ~site:"replica.sender.push";
        let ok =
          match push_update client u with
          | () -> true
          | exception Rpc.Rpc_error _ -> false
        in
        Sdb_check.Mu.lock peer.p_mutex;
        peer.p_sending <- false;
        if ok then begin
          if peer.p_acked = lsn then peer.p_acked <- lsn + 1;
          (* The front is still our entry unless an overflow cleared
             the queue mid-flight. *)
          (match Queue.peek_opt (queue ()) with
          | Some (l, _) when l = lsn -> ignore (Queue.pop (queue ()))
          | _ -> ());
          Metrics.incr m_pushes
        end
        else begin
          peer.p_reachable <- false;
          peer.p_lagging <- true;
          Queue.clear (queue ());
          Metrics.incr m_push_failures
        end;
        refresh_gauges_locked peer ~tip:(local_lsn t);
        Condition.broadcast peer.p_cond;
        Sdb_check.Mu.unlock peer.p_mutex;
        loop ()
      end
    end
  in
  loop ()

(* Eager propagation rides the engine's committed-update stream, so
   every update reaches the peers no matter which code path committed
   it.  This runs on the updater's thread with no engine lock held and
   must stay O(1): enqueue or mark lagging, never touch the network. *)
let on_commit t lsn u =
  List.iter
    (fun peer ->
      Sdb_check.Mu.lock peer.p_mutex;
      let queue = Sdb_check.Guarded.get peer.p_queue in
      (if peer.p_reachable && not peer.p_lagging then begin
         let expected = peer.p_acked + Queue.length queue in
         if expected = lsn then begin
           if Queue.length queue >= peer.p_capacity then begin
             peer.p_lagging <- true;
             Queue.clear queue;
             Metrics.incr m_overflows
           end
           else begin
             Queue.push (lsn, u) queue;
             Condition.broadcast peer.p_cond
           end
         end
         else if expected < lsn then
           (* A racing commit notification slipped past; the eager
              pipeline is no longer contiguous. *)
           peer.p_lagging <- true
         (* expected > lsn: stale duplicate notification; ignore. *)
       end);
      refresh_gauges_locked peer ~tip:(lsn + 1);
      Sdb_check.Mu.unlock peer.p_mutex)
    (all_peers t)

let create ~id ns =
  let t =
    {
      replica_id = id;
      ns;
      peers_mutex = Sdb_check.Mu.make "replica.peers";
      peer_list = [];
      subscription = None;
    }
  in
  t.subscription <- Some (Ns.Db.subscribe (Ns.db ns) (fun lsn u -> on_commit t lsn u));
  t

let id t = t.replica_id
let local t = t.ns

let add_peer ?acked_lsn ?(outbox_capacity = default_outbox_capacity) t ~id client =
  if outbox_capacity < 1 then invalid_arg "Replica.add_peer: outbox_capacity < 1";
  let acked = Option.value acked_lsn ~default:(local_lsn t) in
  let p_mutex = Sdb_check.Mu.make "replica.peer" in
  let peer =
    {
      p_id = id;
      p_client = client;
      p_acked = acked;
      p_reachable = true;
      p_lagging = false;
      p_backlog =
        Metrics.gauge "sdb_replica_backlog"
          ~help:"Updates the peer has not yet acknowledged (LSN delta)."
          ~labels:[ ("replica", t.replica_id); ("peer", id) ];
      p_depth =
        Metrics.gauge "sdb_replica_outbox_depth"
          ~help:"Updates queued in the peer's outbox."
          ~labels:[ ("replica", t.replica_id); ("peer", id) ];
      p_queue =
        Sdb_check.Guarded.create ~by:p_mutex ~name:"replica.outbox"
          (Queue.create ());
      p_capacity = outbox_capacity;
      p_mutex;
      p_cond = Condition.create ();
      p_sending = false;
      p_stop = false;
      p_thread = None;
    }
  in
  Sdb_check.Mu.with_lock peer.p_mutex (fun () ->
      refresh_gauges_locked peer ~tip:(local_lsn t));
  peer.p_thread <- Some (Thread.create (fun () -> sender_loop t peer) ());
  Sdb_check.Mu.with_lock t.peers_mutex (fun () ->
      t.peer_list <- t.peer_list @ [ peer ])

let reconnect t ~id client =
  match List.find_opt (fun p -> String.equal p.p_id id) (all_peers t) with
  | None -> invalid_arg (Printf.sprintf "Replica.reconnect: unknown peer %S" id)
  | Some peer ->
    Sdb_check.Mu.with_lock peer.p_mutex (fun () ->
        peer.p_client <- client;
        peer.p_reachable <- true;
        (* Whatever the outbox held was meant for the dead connection;
           anti-entropy (or the next contiguous commit) resumes
           delivery. *)
        Queue.clear (Sdb_check.Guarded.get peer.p_queue);
        refresh_gauges_locked peer ~tip:(local_lsn t))

let update t u = Ns.Db.update (Ns.db t.ns) u
let set_value t path v = update t (Ns.Set_value (path, v))
let delete_subtree t path = update t (Ns.Delete_subtree path)

(* ------------------------------------------------------------------ *)
(* Anti-entropy                                                        *)

let catch_up t peer =
  (* Park the eager sender and wait out any in-flight push, so the
     catch-up RPCs cannot interleave with an eager push: out-of-order
     delivery of two assignments to one path would revert it. *)
  Sdb_check.Mu.lock peer.p_mutex;
  peer.p_lagging <- true;
  while peer.p_sending do
    Sdb_check.Mu.wait peer.p_cond peer.p_mutex
  done;
  Queue.clear (Sdb_check.Guarded.get peer.p_queue);
  let client = peer.p_client in
  let acked0 = peer.p_acked in
  Sdb_check.Mu.unlock peer.p_mutex;
  (* The whole catch-up conversation is network I/O. *)
  Sdb_check.assert_no_mutex_held_during_io ~site:"replica.catch_up";
  let outcome =
    if acked0 >= local_lsn t then `Caught_up acked0
    else
      match Ns.updates_since t.ns acked0 with
      | None -> (
        (* The log no longer covers the peer's position: ship a full
           snapshot. *)
        let tree, lsn = Ns.snapshot_with_lsn t.ns in
        Metrics.incr m_full_transfers;
        match Proto.Client.write_subtree client [] tree with
        | () -> `Caught_up lsn
        | exception Rpc.Rpc_error _ -> `Failed acked0)
      | Some entries -> (
        let rec replay acked = function
          | [] -> `Caught_up acked
          | (lsn, u) :: rest -> (
            match push_update client u with
            | () ->
              Metrics.incr m_pushes;
              replay (lsn + 1) rest
            | exception Rpc.Rpc_error _ -> `Failed acked)
        in
        replay acked0 entries)
  in
  Sdb_check.Mu.lock peer.p_mutex;
  (match outcome with
  | `Caught_up acked ->
    peer.p_acked <- max peer.p_acked acked;
    peer.p_reachable <- true;
    peer.p_lagging <- false
  | `Failed acked ->
    peer.p_acked <- max peer.p_acked acked;
    peer.p_reachable <- false;
    Metrics.incr m_push_failures);
  refresh_gauges_locked peer ~tip:(local_lsn t);
  Condition.broadcast peer.p_cond;
  Sdb_check.Mu.unlock peer.p_mutex

let anti_entropy t = List.iter (catch_up t) (all_peers t)

(* ------------------------------------------------------------------ *)
(* Introspection and lifecycle                                         *)

let peers t =
  let tip = local_lsn t in
  List.map
    (fun p ->
      Sdb_check.Mu.with_lock p.p_mutex (fun () ->
          {
            peer_id = p.p_id;
            reachable = p.p_reachable;
            lagging = p.p_lagging;
            backlog = max 0 (tip - p.p_acked);
            queued = Queue.length (Sdb_check.Guarded.get p.p_queue);
          }))
    (all_peers t)

let flush ?(timeout_s = 5.0) t =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec wait_peer peer =
    let state =
      Sdb_check.Mu.with_lock peer.p_mutex (fun () ->
          if peer.p_lagging || not peer.p_reachable then `Parked
          else if
            Queue.is_empty (Sdb_check.Guarded.get peer.p_queue)
            && not peer.p_sending
          then `Drained
          else `Busy)
    in
    match state with
    | `Drained -> true
    | `Parked -> false
    | `Busy ->
      if Unix.gettimeofday () >= deadline then false
      else begin
        Thread.delay 0.001;
        wait_peer peer
      end
  in
  List.fold_left (fun acc peer -> wait_peer peer && acc) true (all_peers t)

let shutdown t =
  (match t.subscription with
  | Some s -> Ns.Db.unsubscribe (Ns.db t.ns) s
  | None -> ());
  t.subscription <- None;
  List.iter
    (fun peer ->
      Sdb_check.Mu.with_lock peer.p_mutex (fun () ->
          peer.p_stop <- true;
          Condition.broadcast peer.p_cond);
      (* Closing the client wakes a sender blocked in recv. *)
      (try Proto.Client.close peer.p_client with Rpc.Rpc_error _ -> ());
      match peer.p_thread with
      | Some th ->
        Thread.join th;
        peer.p_thread <- None
      | None -> ())
    (all_peers t)

(* ------------------------------------------------------------------ *)
(* Digests and hard-error recovery                                     *)

let digest ns =
  let tree, _lsn = Ns.snapshot_with_lsn ns in
  Digest.string (P.encode Ns_data.codec_tree tree)

let converged_with t peer_client =
  match Proto.Client.digest peer_client with
  | peer_digest -> String.equal (digest t.ns) peer_digest
  | exception Rpc.Rpc_error _ -> false

(* §4: "restoring its data from another replica".  Unlike [clone_from]
   this works on the {e damaged} store itself — including when [open_]
   refuses it (e.g. interior log damage with committed entries beyond):
   the transferred state is digest-verified, the wrecked files are
   wiped, and the store is rebuilt and checkpointed in place. *)
let repair_from_peer ?config peer_client fs =
  match Proto.Client.fetch_state peer_client with
  | exception Rpc.Rpc_error m -> Error ("repair_from_peer: " ^ m)
  | tree, _lsn, peer_digest ->
    if
      not
        (String.equal
           (Digest.string (P.encode Ns_data.codec_tree tree))
           peer_digest)
    then Error "repair_from_peer: transferred state does not match peer digest"
    else begin
      List.iter
        (fun f -> try fs.Sdb_storage.Fs.remove f with _ -> ())
        (fs.Sdb_storage.Fs.list_files ());
      match Ns.open_ ?config fs with
      | Error e -> Error ("repair_from_peer: " ^ e)
      | Ok ns ->
        Ns.write_subtree ns [] tree;
        Ns.checkpoint ns;
        Metrics.incr m_repairs;
        if String.equal (Ns.digest ns) peer_digest then Ok ns
        else begin
          Ns.close ns;
          Error "repair_from_peer: rebuilt state digest differs from peer"
        end
    end

let clone_from peer_client fs =
  match Proto.Client.snapshot peer_client with
  | exception Rpc.Rpc_error m -> Error ("clone_from: " ^ m)
  | tree, _lsn -> (
    match Ns.open_ fs with
    | Error e -> Error e
    | Ok ns ->
      Ns.write_subtree ns [] tree;
      (* A checkpoint makes the transferred state durable in one
         generation instead of one giant log entry. *)
      Ns.checkpoint ns;
      Ok ns)
