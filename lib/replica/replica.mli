(** Name-server replication (§4).

    The paper's name server "already replicate[s] the database on
    multiple name servers spread across the network" and responds "to
    a hard error on a particular name server replica by restoring its
    data from another replica.  This causes us to lose only those
    updates that had been applied to the damaged replica but not
    propagated to any other replica."

    The model here matches that description: each replica accepts
    client updates locally (durably, through its own log) and eagerly
    pushes them to its peers over RPC; a peer that is unreachable or
    behind is caught up later by {!anti_entropy}, which replays the
    local log suffix the peer is missing — or, when a checkpoint has
    already absorbed that history, ships a full snapshot.  Updates are
    propagated in commit order per origin; concurrent updates at
    different origins converge because the name-server update
    operations are idempotent last-writer assignments on disjoint or
    re-grafted subtrees.  (The richer reconciliation of Lampson's
    global name service is out of this paper's scope.)

    {b Propagation never blocks the commit path.}  Committing an
    update only appends it to a bounded per-peer outbox; a dedicated
    sender thread per peer drains the outbox over RPC.  A peer whose
    transport hangs, errors, or whose outbox overflows is marked
    {e lagging}: eager delivery is suspended and the next
    {!anti_entropy} resynchronizes it.  Local update latency is
    therefore independent of peer health and of the RPC deadline.

    {b Self-healing.}  {!start_health} runs a monitor thread that
    probes every peer with the protocol's cheap [ping] verb on a fixed
    heartbeat interval, drives a per-peer {!Detector} (alive → suspect
    → dead, monotonic-clock deadlines), and automatically catches up
    peers that are lagging or behind — paced by jittered exponential
    backoff while they keep failing — so a partition that heals
    converges without anyone calling {!anti_entropy} by hand. *)

type t

type peer_report = {
  peer_id : string;
  reachable : bool;
  lagging : bool;
      (** eager delivery suspended (failure, overflow, or a missed
          commit); {!anti_entropy} will resynchronize *)
  backlog : int;  (** local updates not yet acknowledged by this peer *)
  queued : int;  (** updates currently waiting in the peer's outbox *)
  health : Detector.state;
      (** the failure detector's verdict; [Alive] until {!start_health}
          has probed the peer *)
}

val create : id:string -> Sdb_nameserver.Nameserver.t -> t
(** Wrap a local name server as a replica.  Propagation subscribes to
    the engine's committed-update stream, so updates made through any
    path — {!update}, the [Nameserver] API, or an RPC handler — are
    pushed to peers. *)

val id : t -> string
val local : t -> Sdb_nameserver.Nameserver.t

val add_peer :
  ?acked_lsn:int -> ?outbox_capacity:int ->
  t -> id:string -> Sdb_rpc.Ns_protocol.Client.t -> unit
(** Register a peer and start its sender thread.  [acked_lsn] is the
    local LSN the peer is already known to have (default: the current
    tip, i.e. the peer is up to date); pass [~acked_lsn:0] for an
    empty peer that must be seeded by the next {!anti_entropy}.
    [outbox_capacity] (default 256) bounds the eager-push queue; when
    it fills, the peer is marked lagging and deferred to anti-entropy
    instead of stalling or growing without bound.  Give the client a
    recv deadline ({!Sdb_rpc.Rpc.Client.create}) so a hung peer
    releases its sender thread. *)

val reconnect : t -> id:string -> Sdb_rpc.Ns_protocol.Client.t -> unit
(** Replace a known peer's (failed) connection, keeping its
    acknowledged position, and mark it reachable again.  The stale
    outbox is discarded; run {!anti_entropy} to catch the peer up. *)

val update : t -> Sdb_nameserver.Nameserver.update -> unit
(** Commit locally (one log write); the subscription then enqueues the
    update for every reachable, up-to-date peer.  Never blocks on the
    network; the update is never lost locally. *)

val set_value : t -> Sdb_nameserver.Name_path.t -> string option -> unit
val delete_subtree : t -> Sdb_nameserver.Name_path.t -> unit

(** {1 Health monitoring and self-healing} *)

type health_config = {
  detector : Detector.config;  (** heartbeat period and thresholds *)
  auto_catch_up : bool;
      (** when true (default), the monitor runs {!anti_entropy}'s
          per-peer catch-up automatically for lagging/behind peers *)
  catch_up_backoff : Sdb_rpc.Backoff.policy;
      (** pacing of repeated catch-up attempts against a peer that
          keeps failing; reset on the first success *)
  catch_up_budget : Sdb_rpc.Backoff.Budget.t;
      (** global rate limiter on monitor-initiated catch-ups (default
          unlimited) *)
}

val default_health_config : health_config

val start_health : ?config:health_config -> t -> unit
(** Start the monitor thread: probe every peer each heartbeat
    interval, update its detector, export
    [sdb_replica_peer_state]/[sdb_replica_heartbeat_rtt_seconds], and
    (unless disabled) catch up unhealthy peers automatically.  Every
    peer's detector is re-armed [Alive] under the new thresholds.
    Raises [Invalid_argument] if already running or the config is
    invalid.  Give peer clients a recv deadline: a probe shares the
    peer's client with the eager sender, and the deadline bounds how
    long a hung push can delay the probe. *)

val stop_health : t -> unit
(** Stop and join the monitor thread (idempotent).  {!shutdown} calls
    this first. *)

val anti_entropy : t -> unit
(** Catch every peer up: replay the log suffix it is missing, or ship
    a full snapshot when the log no longer covers it.  Clears the
    lagging state and marks peers reachable again on success.  Runs on
    the calling thread; eager delivery to a peer is paused (and any
    in-flight push completes first) while that peer is caught up. *)

val flush : ?timeout_s:float -> t -> bool
(** Wait until every peer's outbox has drained (default timeout 5 s).
    Returns [false] if some peer is lagging/unreachable (its outbox
    will not drain until {!anti_entropy}) or the timeout expired. *)

val peers : t -> peer_report list

val shutdown : t -> unit
(** Unsubscribe from the commit stream, stop and join every sender
    thread (closing peer clients to release any blocked receive).
    The replica must not be used afterwards. *)

val converged_with : t -> Sdb_rpc.Ns_protocol.Client.t -> bool
(** Digest comparison with a peer — the long-term consistency check. *)

val digest : Sdb_nameserver.Nameserver.t -> string

val clone_from :
  Sdb_rpc.Ns_protocol.Client.t -> Sdb_storage.Fs.t -> (Sdb_nameserver.Nameserver.t, string) result
(** Hard-error recovery: rebuild a replica's database from a peer's
    snapshot into a fresh store, then checkpoint it. *)

val fetch_state_resumable :
  ?chunk_bytes:int -> ?max_restarts:int ->
  Sdb_rpc.Ns_protocol.Client.t ->
  (Sdb_nameserver.Ns_data.tree * int * string, string) result
(** Pull a peer's full state in [chunk_bytes] pieces (default 64 KiB)
    via the resumable [fetch_meta]/[fetch_chunk] verbs: a connection
    reset mid-transfer costs at most one chunk (the idempotent chunk
    call is retried over a reconnect, resuming at the first missing
    byte) instead of the whole state.  If the peer's state moves past
    the pinned LSN the transfer restarts, at most [max_restarts]
    (default 8) times.  Returns [(tree, lsn, digest)] with the
    reassembled bytes verified against the peer's digest. *)

val repair_from_peer :
  ?config:Smalldb.config -> ?chunk_bytes:int ->
  Sdb_rpc.Ns_protocol.Client.t -> Sdb_storage.Fs.t ->
  (Sdb_nameserver.Nameserver.t, string) result
(** §4's restore-from-replica, automated, on the {e damaged} store
    itself — usable when [open_] refuses the store outright (e.g.
    interior log damage with committed entries beyond it).  Pulls the
    peer's full state with {!fetch_state_resumable} (so a mid-transfer
    connection reset resumes instead of restarting), verifies the
    transfer against the peer's canonical digest, wipes the store's
    files, rebuilds, checkpoints, and verifies the rebuilt digest.
    The lost tail, if any, is "only those updates that had been
    applied to the damaged replica but not propagated to any other
    replica" (§4). *)
