(* Sdb_modecheck — interprocedural lock-mode & effect checker.

   Reads the compiler's typedtree output (.cmt files, produced by dune as
   a side effect of every build) and computes a per-function summary:

     - Vlock modes required / acquired / released,
     - mutex classes held (with their sanitizer kind),
     - blocking I/O performed (Unix syscalls, Fs record-closure calls),
     - epoch enter/exit bracketing.

   Summaries propagate through the call graph to a fixpoint, then a rule
   pass verifies the contracts declared with attributes on engine entry
   points:

     [@@sdb.requires shared|update|exclusive]   caller must hold >= mode
     [@@sdb.acquires shared|update|exclusive]   acquires (doc / entry point)
     [@@sdb.noblock]                            may not block, transitively
     [@@sdb.epoch_section]                      body runs inside an epoch
                                                read section

   The checker also rederives the lock-order DAG from the summaries and
   cross-checks it against the runtime lockdep graph documented in
   DESIGN.md §5.  Waivers share sdb_lint's syntax, under the attribute
   [@sdb.check.allow "rule: reason"].  Exit codes (via bin/sdb_modecheck):
   0 clean, 1 findings, 2 usage/internal error. *)

type vmode = Shared | Update | Exclusive

let mode_rank = function Shared -> 1 | Update -> 2 | Exclusive -> 3

let mode_name = function
  | Shared -> "shared" | Update -> "update" | Exclusive -> "exclusive"

let mode_of_string = function
  | "shared" | "Shared" -> Some Shared
  | "update" | "Update" -> Some Update
  | "exclusive" | "Exclusive" -> Some Exclusive
  | _ -> None

type finding = {
  f_file : string;
  f_line : int;
  f_col : int;
  f_rule : string;
  f_message : string;
}

let rules : (string * string) list = [
  ("mode", "call chain reaches a function whose [@@sdb.requires] mode is \
            not held at the call site");
  ("deadlock", "lock acquisition that the three-mode compatibility matrix \
                or mutex reentry makes a potential deadlock");
  ("noblock", "[@@sdb.noblock] function may block (directly or via a callee)");
  ("io-under-mutex", "blocking I/O while a `Mutex-kind Mu class is held");
  ("epoch-bracket", "epoch enter/exit not balanced on every path");
  ("epoch-safety", "lock acquisition or blocking I/O inside an epoch read \
                    section");
  ("lock-order", "statically derived lock-order graph contains a cycle");
  ("lockdep-xcheck", "static lock-order DAG disagrees with the runtime \
                      lockdep graph in DESIGN.md §5");
  ("unprotected-acquire", "Vlock/Mu acquired, then possibly-raising work, \
                           with no Fun.protect releasing it");
  ("attr", "malformed or unknown sdb.* attribute");
  ("read-error", "a .cmt file could not be read or analyzed");
]

let render f =
  Printf.sprintf "%s:%d:%d: [%s] %s" f.f_file f.f_line f.f_col f.f_rule
    f.f_message

(* ------------------------------------------------------------------ *)
(* Attribute parsing: waivers and contracts.                          *)

let waiver_attr = "sdb.check.allow"

let string_payload (p : Parsetree.payload) =
  match p with
  | PStr
      [ { pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _ } ] -> Some s
  | _ -> None

(* A waiver payload is "rule: reason" (waives one rule) or any bare
   string (waives everything) — same grammar as sdb_lint. *)
let waivers_of_attrs (attrs : Parsetree.attributes) =
  List.filter_map
    (fun (a : Parsetree.attribute) ->
      if a.attr_name.txt <> waiver_attr then None
      else
        match string_payload a.attr_payload with
        | None -> Some "*"
        | Some s -> (
            match String.index_opt s ':' with
            | Some i -> Some (String.trim (String.sub s 0 i))
            | None -> Some (String.trim s)))
    attrs

let waives waivers rule =
  List.exists (fun w -> w = "*" || w = rule || w = "") waivers

type contract = {
  c_requires : vmode option;
  c_acquires : vmode option;
  c_noblock : bool;
  c_epoch_section : bool;
}

let no_contract =
  { c_requires = None; c_acquires = None; c_noblock = false;
    c_epoch_section = false }

(* Contract payloads accept a bare word: [@@sdb.requires shared] parses
   the payload as the identifier/constructor/string "shared". *)
let payload_word (p : Parsetree.payload) =
  match p with
  | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> (
      match e.pexp_desc with
      | Pexp_ident { txt = Longident.Lident s; _ } -> Some s
      | Pexp_construct ({ txt = Longident.Lident s; _ }, None) -> Some s
      | Pexp_constant (Pconst_string (s, _, _)) -> Some s
      | _ -> None)
  | _ -> None

let known_sdb_attrs =
  [ "sdb.requires"; "sdb.acquires"; "sdb.noblock"; "sdb.epoch_section";
    waiver_attr; "sdb.lint.allow" ]

(* [bad] is called for each malformed sdb.* attribute with a message. *)
let contract_of_attrs ~bad (attrs : Parsetree.attributes) =
  List.fold_left
    (fun c (a : Parsetree.attribute) ->
      let name = a.attr_name.txt in
      let mode_arg () =
        match payload_word a.attr_payload with
        | Some w -> (
            match mode_of_string w with
            | Some m -> Some m
            | None ->
                bad (Printf.sprintf "[@%s]: unknown mode %S" name w);
                None)
        | None ->
            bad (Printf.sprintf "[@%s]: expected a mode argument" name);
            None
      in
      match name with
      | "sdb.requires" -> { c with c_requires = mode_arg () }
      | "sdb.acquires" -> { c with c_acquires = mode_arg () }
      | "sdb.noblock" -> { c with c_noblock = true }
      | "sdb.epoch_section" -> { c with c_epoch_section = true }
      | _ ->
          if String.length name > 4 && String.sub name 0 4 = "sdb."
             && not (List.mem name known_sdb_attrs)
          then bad (Printf.sprintf "unknown attribute [@%s]" name);
          c)
    no_contract attrs

(* ------------------------------------------------------------------ *)
(* Canonical names.  Dune mangles wrapped-library modules to           *)
(* Lib__Module; wrapper aliases are Sdb_*.  We normalize paths so that *)
(* Sdb_vlock.Vlock.acquire, Sdb_vlock__Vlock.acquire and               *)
(* Vlock.acquire all resolve to ["Vlock"; "acquire"].                  *)

let strip_mangle s =
  let n = String.length s in
  let rec find i =
    if i + 1 >= n then None
    else if s.[i] = '_' && s.[i + 1] = '_' then Some (i + 2)
    else find (i + 1)
  in
  let rec last acc i =
    match find i with None -> acc | Some j -> last (Some j) j
  in
  match last None 0 with
  | Some j when j < n -> String.sub s j (n - j)
  | _ -> s

let is_mangled s = strip_mangle s <> s

let is_wrapper s =
  String.length s > 4 && String.sub s 0 4 = "Sdb_" && not (is_mangled s)

let normalize parts =
  let parts = match parts with "Stdlib" :: rest -> rest | p -> p in
  let rec drop = function
    | w :: (m :: _ as rest)
      when is_wrapper w && String.length m > 0
           && m.[0] = Char.uppercase_ascii m.[0] ->
        drop rest
    | p :: rest -> strip_mangle p :: drop rest
    | [] -> []
  in
  drop parts

let rec path_parts (p : Path.t) =
  match p with
  | Path.Pident id -> [ Ident.name id ]
  | Path.Pdot (p, s) -> path_parts p @ [ s ]
  | Path.Papply (p, _) -> path_parts p
  | Path.Pextra_ty (p, _) -> path_parts p

let id_of_parts parts = String.concat "." parts

(* ------------------------------------------------------------------ *)
(* Per-function summaries.                                             *)

type mu_kind = [ `Mutex | `Vlock ]

(* What the analysis knows at one program point inside a function. *)
type site = {
  st_mode : vmode option;             (* Vlock mode held here *)
  st_mus : (string * mu_kind) list;   (* Mu classes held, innermost first *)
  st_epoch : int;                     (* epoch-section nesting depth *)
}

let empty_site = { st_mode = None; st_mus = []; st_epoch = 0 }

type callsite = {
  cs_callee : string;        (* canonical id, e.g. "Vlock.acquire" *)
  cs_loc : Location.t;
  cs_at : site;
  cs_waivers : string list;
}

type vlock_acq = {
  va_mode : vmode option;    (* None = mode not statically known *)
  va_loc : Location.t;
  va_at : site;
  va_protected : bool;       (* release reachable via Fun.protect *)
  va_waivers : string list;
}

type mu_acq = {
  ma_class : string;
  ma_kind : mu_kind;
  ma_loc : Location.t;
  ma_at : site;
  ma_protected : bool;
  ma_waivers : string list;
}

type block_site = {
  bs_what : string;          (* e.g. "Unix.fsync", "Fs.w_sync" *)
  bs_loc : Location.t;
  bs_at : site;
  bs_waivers : string list;
}

(* An acquire audit record: opened at Vlock.acquire / Mu.lock, it
   collects the callees and blocking sites reached while the lock is
   held, to check exception safety (is a Fun.protect releasing it?). *)
type open_acq = {
  oa_key : [ `V | `M of string ];
  oa_loc : Location.t;
  oa_waivers : string list;
  mutable oa_open : bool;
  mutable oa_protected : bool;
  mutable oa_callees : string list;
  mutable oa_blocked : string option;
}

type summary = {
  s_id : string;             (* "Unit.Module.fn" *)
  s_file : string;
  s_loc : Location.t;
  s_contract : contract;
  s_waivers : string list;   (* waivers attached to the binding *)
  s_calls : callsite list;
  s_vlock_acqs : vlock_acq list;
  s_mu_acqs : mu_acq list;
  s_blocks : block_site list;
  s_opens : open_acq list;
  s_epoch_balanced : bool;
  (* Fixpoint-computed transitive facts.  Each carries a witness chain
     for the report ("may block: Wal.Writer.sync <- Fs.w_sync"). *)
  mutable x_blocks : string option;
  mutable x_acq_modes : vmode list;
  mutable x_mus : (string * mu_kind) list;
}

(* The runtime lockdep DAG documented in DESIGN.md §5 (and asserted by
   the sanitizer's cross-check target): checkpointing takes the vlock
   while holding the checkpoint token, and the group-commit path takes
   the gc mutex while holding the vlock. *)
let expected_lockdep =
  [ ("smalldb.ckpt", "vlock"); ("vlock", "smalldb.gc") ]

(* Blocking primitives.  Unix syscalls that can block or hit the disk; *)
(* Fs/transport record fields (all record-closure calls go through     *)
(* Texp_field heads); module-level helpers.                            *)
let blocking_unix =
  [ "read"; "write"; "single_write"; "fsync"; "fdatasync"; "openfile";
    "select"; "sleep"; "sleepf"; "connect"; "accept"; "recv"; "recvfrom";
    "send"; "sendto"; "close"; "rename"; "unlink"; "truncate"; "ftruncate";
    "mkdir"; "opendir"; "readdir"; "stat"; "fstat"; "lseek"; "bind";
    "listen"; "shutdown"; "getaddrinfo" ]

let blocking_fields =
  [ (* Fs.t *)
    "list_files"; "exists"; "file_size"; "open_reader"; "create";
    "open_append"; "open_random"; "rename"; "remove"; "truncate";
    (* Fs reader/writer/random closures *)
    "r_read"; "r_seek"; "r_close"; "w_write"; "w_sync"; "w_close";
    "pread"; "pwrite"; "rw_sync"; "rw_size"; "rw_close";
    (* rpc transport closures *)
    "t_send"; "t_recv"; "t_close" ]

let blocking_funs =
  [ "Thread.delay"; "Thread.join"; "Fs.read_file"; "Fs.write_file";
    "Condition.wait" ]

(* Heads that never return: scanning past them must not pollute joins. *)
let diverging_heads =
  [ "raise"; "raise_notrace"; "failwith"; "invalid_arg"; "exit";
    "Fs.io_fail" ]

(* Combinators whose function argument runs inline, in the caller's
   current lock/epoch context (not on another thread, not deferred). *)
let inline_iterators =
  [ "List.iter"; "List.map"; "List.filter"; "List.fold_left";
    "List.filter_map"; "List.concat_map"; "List.exists"; "List.for_all";
    "List.find_opt"; "List.partition"; "List.sort"; "List.iteri";
    "Array.iter"; "Array.map"; "Array.fold_left"; "Array.iteri";
    "Option.iter"; "Option.map"; "Option.fold"; "Option.value";
    "Hashtbl.iter"; "Hashtbl.fold"; "Hashtbl.filter_map_inplace";
    "Queue.iter"; "Seq.iter"; "Result.map"; "Result.iter";
    "Trace.with_span"; "Metrics.with_timer"; "Fun.flip" ]

(* ------------------------------------------------------------------ *)
(* Analysis context.                                                   *)

type ctx = {
  unit_name : string;
  src_file : string;
  findings : finding list ref;
  (* module alias -> canonical parts, e.g. "Core" -> ["Vlock_core";"Make"] *)
  mutable aliases : (string * string list) list;
  (* local identifier (let-bound or record field) -> Mu class + kind *)
  mutable mu_classes : (string * (string * mu_kind)) list;
  summaries : (string, summary) Hashtbl.t;
}

let loc_of (l : Location.t) =
  let p = l.loc_start in
  (p.pos_lnum, p.pos_cnum - p.pos_bol)

let report ctx ?(waivers = []) rule (loc : Location.t) msg =
  if not (waives waivers rule) then begin
    let line, col = loc_of loc in
    ctx.findings :=
      { f_file = ctx.src_file; f_line = line; f_col = col; f_rule = rule;
        f_message = msg }
      :: !(ctx.findings)
  end

(* ------------------------------------------------------------------ *)
(* The abstract interpreter over one function body.                    *)

type scan_state = {
  mutable held : vmode option;
  mutable mus : (string * mu_kind) list;
  mutable epoch : int;
  mutable diverges : bool;
}

type fn_ctx = {
  c : ctx;
  fn_id : string;
  mutable waiver_stack : string list list;
  (* let-bound local closures, inlined at call sites *)
  mutable locals : (Ident.t * Typedtree.expression) list;
  mutable inlining : Ident.t list;   (* recursion guard *)
  mutable in_finally : int;
  (* release keys found in the ~finally of an enclosing Fun.protect:
     acquires opened inside the protected body are born protected *)
  mutable protect_keys : [ `V | `M of string ] list list;
  (* >0 while scanning a lambda that is stored or handed to an unknown
     callee: findings still fire, but effects don't pollute the
     enclosing function's summary *)
  mutable detached : int;
  mutable opens : open_acq list;
  mutable calls : callsite list;
  mutable vlock_acqs : vlock_acq list;
  mutable mu_acqs : mu_acq list;
  mutable blocks : block_site list;
  mutable balanced : bool;
}

let active_waivers fc = List.concat fc.waiver_stack

let site_of (st : scan_state) =
  { st_mode = st.held; st_mus = st.mus; st_epoch = st.epoch }

let snap (st : scan_state) =
  { held = st.held; mus = st.mus; epoch = st.epoch; diverges = st.diverges }

let restore (st : scan_state) (s : scan_state) =
  st.held <- s.held; st.mus <- s.mus; st.epoch <- s.epoch;
  st.diverges <- s.diverges

(* Join the states at the end of the arms of a branch back into [st].
   Diverging arms contribute nothing.  Disagreement on the Vlock mode
   joins to None (unknown); mutex sets intersect; epoch takes the max
   (the bracket check uses the final joined value). *)
let join_into (st : scan_state) (arms : scan_state list) =
  match List.filter (fun a -> not a.diverges) arms with
  | [] -> st.diverges <- true
  | a0 :: rest ->
      let held =
        List.fold_left
          (fun h a -> if a.held = h then h else None)
          a0.held rest
      in
      let mus =
        List.fold_left
          (fun m a -> List.filter (fun c -> List.mem c a.mus) m)
          a0.mus rest
      in
      let epoch = List.fold_left (fun e a -> max e a.epoch) a0.epoch rest in
      st.held <- held; st.mus <- mus; st.epoch <- epoch;
      st.diverges <- false

(* Resolve an identifier path to its canonical parts, expanding local
   module aliases on the head component. *)
let resolve ctx (p : Path.t) =
  let parts = path_parts p in
  let parts =
    match parts with
    | head :: rest -> (
        match List.assoc_opt head ctx.aliases with
        | Some target -> target @ rest
        | None -> parts)
    | [] -> parts
  in
  normalize parts

(* Flatten an application, unwrapping the [@@] and [|>] operators and
   curried heads, keeping labels so ~finally / ~kind args are findable.
   Returns (head expression, (label, arg expression) list). *)
let rec collect_app (e : Typedtree.expression) =
  let open Typedtree in
  match e.exp_desc with
  | Texp_apply
      ( { exp_desc = Texp_ident (p, _, _); _ },
        [ (Asttypes.Nolabel, Some f); (Asttypes.Nolabel, Some x) ] )
    when (match path_parts p with
          | [ op ] | [ "Stdlib"; op ] -> op = "@@" || op = "|>"
          | _ -> false) ->
      let f, x =
        match path_parts p with
        | [ "|>" ] | [ "Stdlib"; "|>" ] -> (x, f)
        | _ -> (f, x)
      in
      let head, args = collect_app f in
      (head, args @ [ (Asttypes.Nolabel, x) ])
  | Texp_apply (f, args) ->
      let head, first = collect_app f in
      let rest =
        List.filter_map
          (fun (lbl, a) -> match a with Some a -> Some (lbl, a) | None -> None)
          args
      in
      (head, first @ rest)
  | _ -> (e, [])

(* Extract a Vlock mode from an argument expression: the constructor
   Vlock.Shared / Update / Exclusive, or an identifier ending in one. *)
let mode_of_expr (e : Typedtree.expression) =
  let open Typedtree in
  match e.exp_desc with
  | Texp_construct (_, cd, _) -> mode_of_string cd.Types.cstr_name
  | Texp_ident (p, _, _) -> (
      match List.rev (path_parts p) with
      | last :: _ -> mode_of_string last
      | [] -> None)
  | _ -> None

(* Name a Mu argument: a record field or identifier, looked up in the
   per-unit class map; unknown names get a stable fallback class. *)
let mu_class_of_arg ctx (e : Typedtree.expression) : string * mu_kind =
  let open Typedtree in
  let lookup name =
    match List.assoc_opt name ctx.mu_classes with
    | Some (cls, kind) -> (cls, kind)
    | None -> (Printf.sprintf "mu:%s.%s" ctx.unit_name name, `Mutex)
  in
  match e.exp_desc with
  | Texp_field (_, _, ld) -> lookup ld.Types.lbl_name
  | Texp_ident (p, _, _) -> (
      match List.rev (path_parts p) with
      | last :: _ -> lookup last
      | [] -> (Printf.sprintf "mu:%s.?" ctx.unit_name, `Mutex))
  | _ -> (Printf.sprintf "mu:%s.?" ctx.unit_name, `Mutex)

(* Strip the instance suffix: "smalldb.ckpt:orders" -> "smalldb.ckpt".
   Fallback classes ("mu:Unit.name") keep their colon. *)
let class_root s =
  if String.length s >= 3 && String.sub s 0 3 = "mu:" then s
  else
    match String.index_opt s ':' with
    | Some i when i > 0 -> String.sub s 0 i
    | _ -> s

(* Constant-string head of a Mu.make class argument: either a literal,
   or [lit ^ dynamic] (instance-suffixed classes). *)
let rec class_const (e : Typedtree.expression) =
  let open Typedtree in
  match e.exp_desc with
  | Texp_constant (Asttypes.Const_string (s, _, _)) -> Some s
  | Texp_apply
      ( { exp_desc = Texp_ident (p, _, _); _ },
        (Asttypes.Nolabel, Some a) :: _ )
    when (match List.rev (path_parts p) with
          | "^" :: _ -> true | _ -> false) -> class_const a
  | _ -> None

let key_eq a b =
  match (a, b) with
  | `V, `V -> true
  | `M x, `M y -> (x : string) = y
  | _ -> false

let fresh_state () = { held = None; mus = []; epoch = 0; diverges = false }

let is_lambda (e : Typedtree.expression) =
  match e.exp_desc with Texp_function _ -> true | _ -> false

(* Peel the (possibly nested, one-parameter-per-layer in 5.x) function
   layers off a lambda, returning the innermost body.  Multi-case
   lambdas (function | A -> .. | B -> ..) return None: the caller scans
   the cases as a match instead. *)
let rec peel_lambda (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_function { cases = [ { c_lhs = _; c_guard = None; c_rhs; _ } ]; _ } ->
      (match peel_lambda c_rhs with Some b -> Some b | None -> Some c_rhs)
  | _ -> None

let rec scan fc st (e : Typedtree.expression) =
  let ctx = fc.c in
  let waivers = waivers_of_attrs e.exp_attributes in
  let bad msg = report ctx "attr" e.exp_loc msg in
  (* contract attributes make no sense on expressions, but run the
     parser anyway so unknown sdb.* attributes are flagged here too *)
  ignore (contract_of_attrs ~bad e.exp_attributes : contract);
  fc.waiver_stack <- waivers :: fc.waiver_stack;
  (match e.exp_desc with
  | Texp_let (_, vbs, body) ->
      List.iter
        (fun (vb : Typedtree.value_binding) ->
          match (vb.vb_pat.pat_desc, is_lambda vb.vb_expr) with
          | Tpat_var (id, _), true ->
              fc.locals <- (id, vb.vb_expr) :: fc.locals
          | _ -> scan fc st vb.vb_expr)
        vbs;
      scan fc st body
  | Texp_sequence (a, b) -> scan fc st a; scan fc st b
  | Texp_ifthenelse (c, t, eo) ->
      scan fc st c;
      let s0 = snap st in
      scan fc st t;
      let arm_then = snap st in
      (match eo with
      | Some els ->
          restore st s0;
          scan fc st els;
          let arm_else = snap st in
          join_into st [ arm_then; arm_else ]
      | None -> join_into st [ arm_then; s0 ])
  | Texp_match (scrut, cases, _) ->
      scan fc st scrut;
      let s0 = snap st in
      let arms =
        List.map
          (fun (c : Typedtree.computation Typedtree.case) ->
            restore st s0;
            (match c.c_guard with Some g -> scan fc st g | None -> ());
            scan fc st c.c_rhs;
            snap st)
          cases
      in
      join_into st arms
  | Texp_try (body, handlers) ->
      let s0 = snap st in
      scan fc st body;
      let arm_body = snap st in
      let arms_h =
        List.map
          (fun (c : Typedtree.value Typedtree.case) ->
            restore st s0;
            (match c.c_guard with Some g -> scan fc st g | None -> ());
            scan fc st c.c_rhs;
            snap st)
          handlers
      in
      join_into st (arm_body :: arms_h)
  | Texp_while (c, b) ->
      scan fc st c;
      let s0 = snap st in
      scan fc st b;
      restore st s0
  | Texp_for (_, _, lo, hi, _, b) ->
      scan fc st lo;
      scan fc st hi;
      let s0 = snap st in
      scan fc st b;
      restore st s0
  | Texp_function { cases; _ } ->
      (* a lambda that is merely being constructed here: scan detached *)
      scan_detached fc cases
  | Texp_assert ({ exp_desc = Texp_construct (_, cd, _); _ }, _)
    when cd.Types.cstr_name = "false" -> st.diverges <- true
  | Texp_assert (cond, _) -> scan fc st cond
  | Texp_apply _ -> scan_apply fc st e
  | _ -> scan_children fc st e);
  fc.waiver_stack <- List.tl fc.waiver_stack

and scan_children fc st e =
  let it =
    { Tast_iterator.default_iterator with expr = (fun _ e -> scan fc st e) }
  in
  Tast_iterator.default_iterator.expr it e

and scan_detached fc cases =
  fc.detached <- fc.detached + 1;
  List.iter
    (fun (c : Typedtree.value Typedtree.case) ->
      let st' = fresh_state () in
      (match c.c_guard with Some g -> scan fc st' g | None -> ());
      scan fc st' c.c_rhs)
    cases;
  fc.detached <- fc.detached - 1

(* Scan an argument handed to an unknown callee: lambdas are scanned
   detached (they may never run, or run elsewhere); everything else is
   evaluated right here. *)
and scan_arg fc st (a : Typedtree.expression) =
  match a.exp_desc with
  | Texp_function { cases; _ } -> scan_detached fc cases
  | _ -> scan fc st a

(* Inline a lambda argument into the current state (used for callees
   known to run it synchronously under the caller's locks). *)
and inline_fn_arg fc st (a : Typedtree.expression) =
  match a.exp_desc with
  | Texp_function { cases = [ { c_guard = None; c_rhs; _ } ]; _ } ->
      (match peel_lambda c_rhs with
      | Some body -> scan fc st body
      | None -> scan fc st c_rhs)
  | Texp_function { cases; _ } ->
      let s0 = snap st in
      let arms =
        List.map
          (fun (c : Typedtree.value Typedtree.case) ->
            restore st s0;
            (match c.c_guard with Some g -> scan fc st g | None -> ());
            scan fc st c.c_rhs;
            snap st)
          cases
      in
      join_into st arms
  | Texp_ident (p, _, _) -> call_ident fc st a.exp_loc p []
  | _ -> scan fc st a

and note_block fc st loc what =
  if fc.detached = 0 then begin
    fc.blocks <-
      { bs_what = what; bs_loc = loc; bs_at = site_of st;
        bs_waivers = active_waivers fc }
      :: fc.blocks;
    List.iter
      (fun oa ->
        if oa.oa_open && oa.oa_blocked = None then oa.oa_blocked <- Some what)
      fc.opens
  end

and note_callsite fc st loc id =
  if fc.detached = 0 then begin
    fc.calls <-
      { cs_callee = id; cs_loc = loc; cs_at = site_of st;
        cs_waivers = active_waivers fc }
      :: fc.calls;
    List.iter
      (fun oa -> if oa.oa_open then oa.oa_callees <- id :: oa.oa_callees)
      fc.opens
  end

and born_protected fc key =
  fc.in_finally > 0
  || List.exists (List.exists (key_eq key)) fc.protect_keys

and open_record fc key loc =
  if fc.detached = 0 then
    fc.opens <-
      { oa_key = key; oa_loc = loc; oa_waivers = active_waivers fc;
        oa_open = true; oa_protected = born_protected fc key;
        oa_callees = []; oa_blocked = None }
      :: fc.opens

and close_record fc key =
  match
    List.find_opt (fun oa -> oa.oa_open && key_eq oa.oa_key key) fc.opens
  with
  | Some oa ->
      oa.oa_open <- false;
      if fc.in_finally > 0 then oa.oa_protected <- true
  | None -> ()

and mode_conflict held acq =
  match (held, acq) with
  | Shared, Shared | Shared, Update | Update, Shared -> false
  | _ -> true

and vlock_acquire fc st loc m =
  let ctx = fc.c in
  let waivers = active_waivers fc in
  (match (st.held, m) with
  | Some h, Some a when mode_conflict h a ->
      report ctx ~waivers "deadlock" loc
        (Printf.sprintf
           "Vlock.acquire %s while already holding %s (self-deadlock per \
            the mode compatibility matrix)"
           (mode_name a) (mode_name h))
  | _ -> ());
  if fc.detached = 0 then
    fc.vlock_acqs <-
      { va_mode = m; va_loc = loc; va_at = site_of st;
        va_protected = born_protected fc `V; va_waivers = waivers }
      :: fc.vlock_acqs;
  (match m with Some m -> st.held <- Some m | None -> ());
  open_record fc `V loc

and vlock_release fc st =
  st.held <- None;
  close_record fc `V

and mu_lock fc st loc arg =
  let ctx = fc.c in
  let waivers = active_waivers fc in
  let cls, kind = mu_class_of_arg ctx arg in
  if List.exists (fun (c, _) -> c = cls) st.mus then
    report ctx ~waivers "deadlock" loc
      (Printf.sprintf "Mu.lock of class %S while already holding it \
                       (non-recursive mutex)" cls);
  if fc.detached = 0 then
    fc.mu_acqs <-
      { ma_class = cls; ma_kind = kind; ma_loc = loc; ma_at = site_of st;
        ma_protected = born_protected fc (`M cls); ma_waivers = waivers }
      :: fc.mu_acqs;
  st.mus <- (cls, kind) :: st.mus;
  open_record fc (`M cls) loc

and mu_unlock fc st arg =
  let cls, _ = mu_class_of_arg fc.c arg in
  let rec remove = function
    | [] -> []
    | (c, _) :: rest when c = cls -> rest
    | x :: rest -> x :: remove rest
  in
  st.mus <- remove st.mus;
  close_record fc (`M cls)

and scan_apply fc st (e : Typedtree.expression) =
  let head, args = collect_app e in
  match head.exp_desc with
  | Texp_field (obj, _, ld) ->
      scan fc st obj;
      List.iter (fun (_, a) -> scan_arg fc st a) args;
      if List.mem ld.Types.lbl_name blocking_fields then
        note_block fc st e.exp_loc ("closure ." ^ ld.Types.lbl_name)
  | Texp_ident (p, _, _) -> dispatch fc st e.exp_loc p args
  | _ ->
      scan fc st head;
      List.iter (fun (_, a) -> scan_arg fc st a) args

(* A bare or partially-applied identifier in an invoked position. *)
and call_ident fc st loc p args = dispatch fc st loc p args

and dispatch fc st loc p args =
  let parts = resolve fc.c p in
  let id = id_of_parts parts in
  let nolabels =
    List.filter_map
      (fun (l, a) -> if l = Asttypes.Nolabel then Some a else None)
      args
  in
  let local =
    match p with
    | Path.Pident pid ->
        List.find_opt (fun (i, _) -> Ident.same i pid) fc.locals
    | _ -> None
  in
  match local with
  | Some (pid, body) -> inline_local fc st pid body args
  | None -> (
      match (parts, nolabels) with
      | [ "Vlock"; "acquire" ], [ lk; m ] ->
          scan fc st lk;
          vlock_acquire fc st loc (mode_of_expr m)
      | [ "Vlock"; "release" ], lk :: _ ->
          scan fc st lk;
          vlock_release fc st
      | [ "Vlock"; "upgrade" ], lk :: _ ->
          scan fc st lk;
          if st.held <> Some Update && st.held <> Some Exclusive then
            report fc.c ~waivers:(active_waivers fc) "mode" loc
              (Printf.sprintf
                 "Vlock.upgrade requires Update held; here the mode is %s"
                 (match st.held with
                 | Some m -> mode_name m
                 | None -> "not statically known"));
          st.held <- Some Exclusive
      | [ "Vlock"; "downgrade" ], lk :: _ ->
          scan fc st lk;
          st.held <- Some Update
      | [ "Vlock"; "with_lock" ], [ lk; m; f ] ->
          scan fc st lk;
          let mode = mode_of_expr m in
          (match (st.held, mode) with
          | Some h, Some a when mode_conflict h a ->
              report fc.c ~waivers:(active_waivers fc) "deadlock" loc
                (Printf.sprintf
                   "Vlock.with_lock %s while already holding %s"
                   (mode_name a) (mode_name h))
          | _ -> ());
          if fc.detached = 0 then
            fc.vlock_acqs <-
              { va_mode = mode; va_loc = loc; va_at = site_of st;
                va_protected = true; va_waivers = active_waivers fc }
              :: fc.vlock_acqs;
          let prev = st.held in
          (match mode with Some m -> st.held <- Some m | None -> ());
          inline_fn_arg fc st f;
          st.held <- prev
      | ([ "Mu"; "lock" ] | [ "Sdb_check"; "Mu"; "lock" ]), [ m ] ->
          mu_lock fc st loc m
      | ([ "Mu"; "unlock" ] | [ "Sdb_check"; "Mu"; "unlock" ]), [ m ] ->
          mu_unlock fc st m
      | ([ "Mu"; "with_lock" ] | [ "Sdb_check"; "Mu"; "with_lock" ]), [ m; f ]
        ->
          mu_lock fc st loc m;
          (match
             List.find_opt
               (fun oa -> oa.oa_open
                          && key_eq oa.oa_key (`M (fst (mu_class_of_arg fc.c m))))
               fc.opens
           with
          | Some oa -> oa.oa_protected <- true
          | None -> ());
          inline_fn_arg fc st f;
          mu_unlock fc st m
      | ([ "Mu"; "wait" ] | [ "Sdb_check"; "Mu"; "wait" ]), _ ->
          (* Condition wait: atomically releases the waited mutex while
             blocked and reacquires before returning, so it blocks, but
             not *under* that mutex — and it cannot strand it. *)
          List.iter (fun (_, a) -> scan_arg fc st a) args;
          let waited =
            match nolabels with
            | _ :: mu :: _ -> Some (fst (mu_class_of_arg fc.c mu))
            | _ -> None
          in
          if fc.detached = 0 then begin
            let mus =
              match waited with
              | Some w -> List.filter (fun (c, _) -> c <> w) st.mus
              | None -> st.mus
            in
            fc.blocks <-
              { bs_what = "Mu.wait"; bs_loc = loc;
                bs_at = { (site_of st) with st_mus = mus };
                bs_waivers = active_waivers fc }
              :: fc.blocks;
            List.iter
              (fun oa ->
                let is_waited =
                  match waited with
                  | Some w -> key_eq oa.oa_key (`M w)
                  | None -> false
                in
                if oa.oa_open && (not is_waited) && oa.oa_blocked = None
                then oa.oa_blocked <- Some "Mu.wait")
              fc.opens
          end
      | [ "Fun"; "protect" ], _ -> fun_protect fc st loc args
      | ( [ "Epoch"; ("read" | "read_with_lsn" | "pinned") ],
          _ ) ->
          let fn_arg = List.find_opt is_lambda (List.rev nolabels) in
          let is_fn a =
            match fn_arg with Some f -> f == a | None -> false
          in
          List.iter
            (fun (_, a) -> if not (is_fn a) then scan_arg fc st a)
            args;
          st.epoch <- st.epoch + 1;
          (match fn_arg with
          | Some f -> inline_fn_arg fc st f
          | None -> ());
          st.epoch <- st.epoch - 1
      | [ "Sdb_check"; "note_epoch_enter" ], _ ->
          st.epoch <- st.epoch + 1
      | [ "Sdb_check"; "note_epoch_exit" ], _ ->
          st.epoch <- max 0 (st.epoch - 1)
      | ([ "Condition"; "wait" ] | [ "Condition"; "Wait" ]), _ ->
          List.iter (fun (_, a) -> scan_arg fc st a) args;
          note_block fc st loc "Condition.wait"
      | [ "Unix"; f ], _ when List.mem f blocking_unix ->
          List.iter (fun (_, a) -> scan_arg fc st a) args;
          note_block fc st loc ("Unix." ^ f)
      | _, _ when List.mem id blocking_funs ->
          List.iter (fun (_, a) -> scan_arg fc st a) args;
          note_block fc st loc id
      | _, _
        when List.mem id diverging_heads
             || (match parts with
                | [ f ] -> List.mem f diverging_heads
                | _ -> false) ->
          List.iter (fun (_, a) -> scan_arg fc st a) args;
          st.diverges <- true
      | _, _ when List.mem id inline_iterators ->
          List.iter
            (fun (_, a) ->
              if is_lambda a then inline_fn_arg fc st a
              else scan fc st a)
            args
      | _ ->
          note_callsite fc st loc id;
          List.iter (fun (_, a) -> scan_arg fc st a) args)

and inline_local fc st pid body args =
  if List.exists (fun i -> Ident.same i pid) fc.inlining
     || List.length fc.inlining > 8
  then begin
    note_callsite fc st Location.none ("local." ^ Ident.name pid);
    List.iter (fun (_, a) -> scan_arg fc st a) args
  end
  else begin
    List.iter (fun (_, a) -> scan_arg fc st a) args;
    fc.inlining <- pid :: fc.inlining;
    (match peel_lambda body with
    | Some b -> scan fc st b
    | None ->
        (match body.exp_desc with
        | Texp_function { cases; _ } ->
            let s0 = snap st in
            let arms =
              List.map
                (fun (c : Typedtree.value Typedtree.case) ->
                  restore st s0;
                  (match c.c_guard with Some g -> scan fc st g | None -> ());
                  scan fc st c.c_rhs;
                  snap st)
                cases
            in
            join_into st arms
        | _ -> scan fc st body));
    fc.inlining <- List.tl fc.inlining
  end

and fun_protect fc st loc args =
  let finally =
    List.find_map
      (fun (l, a) ->
        match l with Asttypes.Labelled "finally" -> Some a | _ -> None)
      args
  in
  let body =
    List.find_map
      (fun (l, a) -> if l = Asttypes.Nolabel then Some a else None)
      args
  in
  let keys =
    match finally with Some f -> probe_releases fc f | None -> []
  in
  List.iter
    (fun oa ->
      if oa.oa_open && List.exists (key_eq oa.oa_key) keys then
        oa.oa_protected <- true)
    fc.opens;
  fc.protect_keys <- keys :: fc.protect_keys;
  (match body with
  | Some b -> inline_fn_arg fc st b
  | None -> ());
  fc.protect_keys <- List.tl fc.protect_keys;
  (match finally with
  | Some f ->
      (* the finally runs before anything after the protect, so its
         effects (releases, epoch exits) persist in the state *)
      fc.in_finally <- fc.in_finally + 1;
      inline_fn_arg fc st f;
      fc.in_finally <- fc.in_finally - 1
  | None ->
      report fc.c ~waivers:(active_waivers fc) "attr" loc
        "Fun.protect without a syntactic ~finally argument — the checker \
         cannot audit this release path")

(* Side-effect-free pre-scan of a ~finally expression: which lock keys
   does it release?  Local closures are chased (depth-capped). *)
and probe_releases fc (e : Typedtree.expression) =
  let acc = ref [] in
  let depth = ref 0 in
  let rec go (e : Typedtree.expression) =
    match e.exp_desc with
    | Texp_apply _ ->
        let head, args = collect_app e in
        (match head.exp_desc with
        | Texp_ident (p, _, _) ->
            (match resolve fc.c p with
            | [ "Vlock"; "release" ] -> acc := `V :: !acc
            | [ "Mu"; "unlock" ] | [ "Sdb_check"; "Mu"; "unlock" ] -> (
                match args with
                | (_, a) :: _ ->
                    acc := `M (fst (mu_class_of_arg fc.c a)) :: !acc
                | [] -> ())
            | _ -> (
                match p with
                | Path.Pident pid when !depth < 8 -> (
                    match
                      List.find_opt
                        (fun (i, _) -> Ident.same i pid)
                        fc.locals
                    with
                    | Some (_, body) ->
                        incr depth;
                        go body;
                        decr depth
                    | None -> ())
                | _ -> ()))
        | _ -> go head);
        List.iter (fun (_, a) -> go a) args
    | _ ->
        let it =
          { Tast_iterator.default_iterator with expr = (fun _ e -> go e) }
        in
        Tast_iterator.default_iterator.expr it e
  in
  go e;
  !acc

(* ------------------------------------------------------------------ *)
(* Per-binding summaries and the structure walk.                       *)

let dedup l =
  List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] l

let summarize_vb ctx ~prefix (vb : Typedtree.value_binding) =
  let name =
    match Typedtree.pat_bound_idents vb.vb_pat with
    | id :: _ -> Ident.name id
    | [] -> Printf.sprintf "_init_%d" (fst (loc_of vb.vb_loc))
  in
  let fn_id = prefix ^ "." ^ name in
  let bad msg = report ctx "attr" vb.vb_loc msg in
  let contract = contract_of_attrs ~bad vb.vb_attributes in
  let waivers = waivers_of_attrs vb.vb_attributes in
  let fc =
    { c = ctx; fn_id; waiver_stack = [ waivers ]; locals = []; inlining = [];
      in_finally = 0; protect_keys = []; detached = 0; opens = []; calls = [];
      vlock_acqs = []; mu_acqs = []; blocks = []; balanced = true }
  in
  let init_epoch = if contract.c_epoch_section then 1 else 0 in
  let st =
    { held = contract.c_requires; mus = []; epoch = init_epoch;
      diverges = false }
  in
  (match vb.vb_expr.exp_desc with
  | Texp_function _ -> inline_fn_arg fc st vb.vb_expr
  | _ -> scan fc st vb.vb_expr);
  let balanced = st.diverges || st.epoch = init_epoch in
  let s =
    { s_id = fn_id; s_file = ctx.src_file; s_loc = vb.vb_loc;
      s_contract = contract; s_waivers = waivers; s_calls = fc.calls;
      s_vlock_acqs = fc.vlock_acqs; s_mu_acqs = fc.mu_acqs;
      s_blocks = fc.blocks; s_opens = fc.opens;
      s_epoch_balanced = balanced && fc.balanced;
      x_blocks = None; x_acq_modes = []; x_mus = [] }
  in
  Hashtbl.replace ctx.summaries fn_id s

let rec unwrap_me (me : Typedtree.module_expr) =
  match me.mod_desc with
  | Tmod_constraint (me, _, _, _) -> unwrap_me me
  | _ -> me

let rec walk_structure ctx ~prefix (str : Typedtree.structure) =
  List.iter (walk_item ctx ~prefix) str.str_items

and walk_item ctx ~prefix (it : Typedtree.structure_item) =
  match it.str_desc with
  | Tstr_value (_, vbs) -> List.iter (summarize_vb ctx ~prefix) vbs
  | Tstr_module mb -> walk_mb ctx ~prefix mb
  | Tstr_recmodule mbs -> List.iter (walk_mb ctx ~prefix) mbs
  | _ -> ()

and walk_mb ctx ~prefix (mb : Typedtree.module_binding) =
  let name = match mb.mb_name.txt with Some n -> n | None -> "_" in
  walk_me ctx ~prefix:(prefix ^ "." ^ name) (unwrap_me mb.mb_expr)

and walk_me ctx ~prefix (me : Typedtree.module_expr) =
  match me.mod_desc with
  | Tmod_structure str -> walk_structure ctx ~prefix str
  | Tmod_functor (_, body) -> walk_me ctx ~prefix (unwrap_me body)
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Pre-pass: module aliases and Mu class names.                        *)

let mu_make_class ctx (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_apply _ -> (
      let head, args = collect_app e in
      match head.exp_desc with
      | Texp_ident (p, _, _) -> (
          match resolve ctx p with
          | [ "Mu"; ("make" | "create") ]
          | [ "Sdb_check"; "Mu"; ("make" | "create") ] ->
              let cls =
                List.find_map
                  (fun (l, a) ->
                    if l = Asttypes.Nolabel then class_const a else None)
                  args
              in
              let rec variant_of (a : Typedtree.expression) =
                match a.exp_desc with
                | Texp_variant (v, _) -> Some v
                | Texp_construct (_, cd, [ x ])
                  when cd.Types.cstr_name = "Some" -> variant_of x
                | _ -> None
              in
              let kind =
                match
                  List.find_map
                    (fun (l, (a : Typedtree.expression)) ->
                      match l with
                      | Asttypes.Labelled "kind"
                      | Asttypes.Optional "kind" -> variant_of a
                      | _ -> None)
                    args
                with
                | Some "Vlock" -> `Vlock
                | _ -> `Mutex
              in
              (match cls with
              | Some c -> Some (class_root c, kind)
              | None -> None)
          | _ -> None)
      | _ -> None)
  | _ -> None

let prepass ctx (str : Typedtree.structure) =
  let reg_mu name e =
    match mu_make_class ctx e with
    | Some (cls, kind) -> (
        match List.assoc_opt name ctx.mu_classes with
        | Some (c0, _) when c0 <> cls ->
            (* ambiguous within the unit: fall back to a positional name *)
            ctx.mu_classes <-
              (name, (Printf.sprintf "mu:%s.%s" ctx.unit_name name, kind))
              :: List.remove_assoc name ctx.mu_classes
        | Some _ -> ()
        | None -> ctx.mu_classes <- (name, (cls, kind)) :: ctx.mu_classes)
    | None -> ()
  in
  let reg_alias name (me : Typedtree.module_expr) =
    match (unwrap_me me).mod_desc with
    | Tmod_ident (p, _) ->
        ctx.aliases <- (name, normalize (path_parts p)) :: ctx.aliases
    | Tmod_apply (f, _, _) -> (
        match (unwrap_me f).mod_desc with
        | Tmod_ident (p, _) ->
            ctx.aliases <- (name, normalize (path_parts p)) :: ctx.aliases
        | _ -> ())
    | _ -> ()
  in
  let it =
    { Tast_iterator.default_iterator with
      expr =
        (fun self e ->
          (match e.exp_desc with
          | Texp_record { fields; _ } ->
              Array.iter
                (fun ((ld : Types.label_description), def) ->
                  match def with
                  | Typedtree.Overridden (_, fe) ->
                      reg_mu ld.Types.lbl_name fe
                  | Typedtree.Kept _ -> ())
                fields
          | _ -> ());
          Tast_iterator.default_iterator.expr self e);
      value_binding =
        (fun self vb ->
          (match vb.vb_pat.pat_desc with
          | Tpat_var (id, _) -> reg_mu (Ident.name id) vb.vb_expr
          | _ -> ());
          Tast_iterator.default_iterator.value_binding self vb);
      module_binding =
        (fun self mb ->
          (match mb.mb_name.txt with
          | Some n -> reg_alias n mb.mb_expr
          | None -> ());
          Tast_iterator.default_iterator.module_binding self mb)
    }
  in
  it.structure it str

(* ------------------------------------------------------------------ *)
(* Reading .cmt files.                                                 *)

let unit_of_filename file =
  let base = Filename.remove_extension (Filename.basename file) in
  String.capitalize_ascii (strip_mangle base)

let analyze_cmt ~findings ~summaries file =
  match Cmt_format.read_cmt file with
  | exception e ->
      findings :=
        { f_file = file; f_line = 0; f_col = 0; f_rule = "read-error";
          f_message = Printexc.to_string e }
        :: !findings
  | cmt -> (
      match cmt.Cmt_format.cmt_annots with
      | Cmt_format.Implementation str ->
          let src =
            match cmt.Cmt_format.cmt_sourcefile with
            | Some s -> s
            | None -> file
          in
          let ctx =
            { unit_name = unit_of_filename file; src_file = src; findings;
              aliases = []; mu_classes = []; summaries }
          in
          prepass ctx str;
          walk_structure ctx ~prefix:ctx.unit_name str
      | _ -> ())

(* Recursively collect .cmt files.  Unlike sdb_lint's source walker,
   this one must descend into dot-directories: dune keeps cmt artifacts
   under .objs/byte. *)
let walk_cmts roots =
  let acc = ref [] in
  let rec go path =
    match Sys.is_directory path with
    | true ->
        Array.iter
          (fun entry -> go (Filename.concat path entry))
          (Sys.readdir path)
    | false -> if Filename.check_suffix path ".cmt" then acc := path :: !acc
    | exception Sys_error _ -> ()
  in
  List.iter go roots;
  List.sort compare !acc

(* ------------------------------------------------------------------ *)
(* Callee resolution and the interprocedural fixpoint.                 *)

let split_id id = String.split_on_char '.' id

(* Resolve a callsite's canonical callee id to a summary: try the exact
   id, then re-anchor it under each prefix of the caller's module path
   (longest first), then match a unique suffix anywhere. *)
let resolve_callee summaries ~caller callee =
  match Hashtbl.find_opt summaries callee with
  | Some s -> Some s
  | None ->
      let mods =
        match List.rev (split_id caller) with
        | _fn :: rev_mods -> List.rev rev_mods
        | [] -> []
      in
      let rec try_prefix mods =
        let cand = String.concat "." (mods @ [ callee ]) in
        match Hashtbl.find_opt summaries cand with
        | Some s -> Some s
        | None -> (
            match mods with
            | [] -> None
            | _ -> try_prefix (List.rev (List.tl (List.rev mods))))
      in
      (match try_prefix mods with
      | Some s -> Some s
      | None ->
          let suffix = "." ^ callee in
          let hits = ref [] in
          Hashtbl.iter
            (fun id s ->
              if String.length id > String.length suffix
                 && String.sub id
                      (String.length id - String.length suffix)
                      (String.length suffix)
                    = suffix
              then hits := s :: !hits)
            summaries;
          (match !hits with [ s ] -> Some s | _ -> None))

let fixpoint summaries =
  Hashtbl.iter
    (fun _ s ->
      (match s.s_blocks with
      | b :: _ -> s.x_blocks <- Some b.bs_what
      | [] -> ());
      s.x_acq_modes <-
        dedup (List.filter_map (fun va -> va.va_mode) s.s_vlock_acqs);
      s.x_mus <-
        dedup (List.map (fun ma -> (ma.ma_class, ma.ma_kind)) s.s_mu_acqs))
    summaries;
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 100 do
    changed := false;
    incr rounds;
    Hashtbl.iter
      (fun _ s ->
        List.iter
          (fun cs ->
            match resolve_callee summaries ~caller:s.s_id cs.cs_callee with
            | None -> ()
            | Some callee ->
                (match (s.x_blocks, callee.x_blocks) with
                | None, Some w ->
                    s.x_blocks <- Some (cs.cs_callee ^ " <- " ^ w);
                    changed := true
                | _ -> ());
                List.iter
                  (fun m ->
                    if not (List.mem m s.x_acq_modes) then begin
                      s.x_acq_modes <- m :: s.x_acq_modes;
                      changed := true
                    end)
                  callee.x_acq_modes;
                List.iter
                  (fun mu ->
                    if not (List.mem mu s.x_mus) then begin
                      s.x_mus <- mu :: s.x_mus;
                      changed := true
                    end)
                  callee.x_mus)
          s.s_calls)
      summaries
  done

(* ------------------------------------------------------------------ *)
(* Rule checks over the fixpointed summaries.                          *)

let finding_of_loc file rule (loc : Location.t) msg =
  let line, col = loc_of loc in
  { f_file = file; f_line = line; f_col = col; f_rule = rule;
    f_message = msg }

let run_checks summaries =
  let findings = ref [] in
  let emit ~waivers file rule loc msg =
    if not (waives waivers rule) then
      findings := finding_of_loc file rule loc msg :: !findings
  in
  let rank_opt = function Some m -> mode_rank m | None -> 0 in
  Hashtbl.iter
    (fun _ s ->
      (* noblock *)
      (match (s.s_contract.c_noblock, s.x_blocks) with
      | true, Some w ->
          emit ~waivers:s.s_waivers s.s_file "noblock" s.s_loc
            (Printf.sprintf "%s is [@@sdb.noblock] but may block: %s" s.s_id
               w)
      | _ -> ());
      (* epoch bracket *)
      if not s.s_epoch_balanced then
        emit ~waivers:s.s_waivers s.s_file "epoch-bracket" s.s_loc
          (Printf.sprintf
             "%s: epoch enter/exit not balanced on every path" s.s_id);
      (* direct blocking sites *)
      List.iter
        (fun bs ->
          (match
             List.find_opt (fun (_, k) -> k = `Mutex) bs.bs_at.st_mus
           with
          | Some (cls, _) ->
              emit ~waivers:bs.bs_waivers s.s_file "io-under-mutex" bs.bs_loc
                (Printf.sprintf "%s: blocking call %s while holding mutex %S"
                   s.s_id bs.bs_what cls)
          | None -> ());
          if bs.bs_at.st_epoch > 0 then
            emit ~waivers:bs.bs_waivers s.s_file "epoch-safety" bs.bs_loc
              (Printf.sprintf
                 "%s: blocking call %s inside an epoch read section" s.s_id
                 bs.bs_what))
        s.s_blocks;
      (* direct lock acquisitions inside epoch sections *)
      List.iter
        (fun va ->
          if va.va_at.st_epoch > 0 then
            emit ~waivers:va.va_waivers s.s_file "epoch-safety" va.va_loc
              (Printf.sprintf
                 "%s: Vlock acquisition inside an epoch read section" s.s_id))
        s.s_vlock_acqs;
      List.iter
        (fun ma ->
          if ma.ma_at.st_epoch > 0 then
            emit ~waivers:ma.ma_waivers s.s_file "epoch-safety" ma.ma_loc
              (Printf.sprintf
                 "%s: Mu.lock of %S inside an epoch read section" s.s_id
                 ma.ma_class))
        s.s_mu_acqs;
      (* call sites *)
      List.iter
        (fun cs ->
          match resolve_callee summaries ~caller:s.s_id cs.cs_callee with
          | None -> ()
          | Some callee ->
              (match callee.s_contract.c_requires with
              | Some m when rank_opt cs.cs_at.st_mode < mode_rank m ->
                  emit ~waivers:cs.cs_waivers s.s_file "mode" cs.cs_loc
                    (Printf.sprintf
                       "%s calls %s which requires %s, but the mode held \
                        here is %s"
                       s.s_id callee.s_id (mode_name m)
                       (match cs.cs_at.st_mode with
                       | Some h -> mode_name h
                       | None -> "none/unknown"))
              | _ -> ());
              (match cs.cs_at.st_mode with
              | Some h ->
                  List.iter
                    (fun a ->
                      if mode_conflict h a then
                        emit ~waivers:cs.cs_waivers s.s_file "deadlock"
                          cs.cs_loc
                          (Printf.sprintf
                             "%s holds %s and calls %s which may acquire %s \
                              (self-deadlock)"
                             s.s_id (mode_name h) callee.s_id (mode_name a)))
                    callee.x_acq_modes
              | None -> ());
              List.iter
                (fun (cls, _) ->
                  if List.exists (fun (c, _) -> c = cls) callee.x_mus then
                    emit ~waivers:cs.cs_waivers s.s_file "deadlock" cs.cs_loc
                      (Printf.sprintf
                         "%s holds mutex %S and calls %s which may lock it \
                          again"
                         s.s_id cls callee.s_id))
                cs.cs_at.st_mus;
              (match callee.x_blocks with
              | Some w ->
                  (match
                     List.find_opt
                       (fun (_, k) -> k = `Mutex)
                       cs.cs_at.st_mus
                   with
                  | Some (cls, _) ->
                      emit ~waivers:cs.cs_waivers s.s_file "io-under-mutex"
                        cs.cs_loc
                        (Printf.sprintf
                           "%s: call to %s may block (%s) while holding \
                            mutex %S"
                           s.s_id callee.s_id w cls)
                  | None -> ());
                  if cs.cs_at.st_epoch > 0 then
                    emit ~waivers:cs.cs_waivers s.s_file "epoch-safety"
                      cs.cs_loc
                      (Printf.sprintf
                         "%s: call to %s may block (%s) inside an epoch \
                          read section"
                         s.s_id callee.s_id w)
              | None -> ());
              if cs.cs_at.st_epoch > 0
                 && (callee.x_acq_modes <> [] || callee.x_mus <> [])
              then
                emit ~waivers:cs.cs_waivers s.s_file "epoch-safety" cs.cs_loc
                  (Printf.sprintf
                     "%s: call to %s may acquire locks inside an epoch read \
                      section"
                     s.s_id callee.s_id))
        s.s_calls;
      (* exception-safe release audit *)
      List.iter
        (fun oa ->
          if not oa.oa_protected then begin
            let risky =
              match oa.oa_blocked with
              | Some w -> Some w
              | None ->
                  List.find_map
                    (fun c ->
                      match resolve_callee summaries ~caller:s.s_id c with
                      | Some callee -> (
                          match callee.x_blocks with
                          | Some w -> Some (c ^ " <- " ^ w)
                          | None -> None)
                      | None -> None)
                    oa.oa_callees
            in
            match risky with
            | Some w ->
                emit ~waivers:oa.oa_waivers s.s_file "unprotected-acquire"
                  oa.oa_loc
                  (Printf.sprintf
                     "%s: lock held across possibly-raising work (%s) with \
                      no Fun.protect releasing it on the exception path"
                     s.s_id w)
            | None -> ()
          end)
        s.s_opens)
    summaries;
  !findings

(* ------------------------------------------------------------------ *)
(* Lock-order derivation and the runtime lockdep cross-check.          *)

(* An edge (a, b) means: b was acquired while a was held.  Vlock
   acquisitions use the node name "vlock", matching the sanitizer's
   runtime graph. *)
let derive_edges summaries =
  let edges = ref [] in
  let add a b =
    let a = class_root a and b = class_root b in
    if a <> b && not (List.mem (a, b) !edges) then edges := (a, b) :: !edges
  in
  Hashtbl.iter
    (fun _ s ->
      List.iter
        (fun ma ->
          List.iter (fun (h, _) -> add h ma.ma_class) ma.ma_at.st_mus;
          if ma.ma_at.st_mode <> None then add "vlock" ma.ma_class)
        s.s_mu_acqs;
      List.iter
        (fun va ->
          List.iter (fun (h, _) -> add h "vlock") va.va_at.st_mus)
        s.s_vlock_acqs;
      List.iter
        (fun cs ->
          match resolve_callee summaries ~caller:s.s_id cs.cs_callee with
          | None -> ()
          | Some callee ->
              List.iter
                (fun (c, _) ->
                  List.iter (fun (h, _) -> add h c) cs.cs_at.st_mus;
                  if cs.cs_at.st_mode <> None then add "vlock" c)
                callee.x_mus;
              if callee.x_acq_modes <> [] then
                List.iter (fun (h, _) -> add h "vlock") cs.cs_at.st_mus)
        s.s_calls)
    summaries;
  List.sort compare !edges

let find_cycle edges =
  let nodes = dedup (List.concat_map (fun (a, b) -> [ a; b ]) edges) in
  let succs n = List.filter_map (fun (a, b) -> if a = n then Some b else None) edges in
  let rec dfs path visiting n =
    if List.mem n path then Some (List.rev (n :: path))
    else if List.mem n visiting then None
    else
      List.fold_left
        (fun acc m -> match acc with Some _ -> acc | None -> dfs (n :: path) visiting m)
        None (succs n)
  in
  List.fold_left
    (fun acc n -> match acc with Some _ -> acc | None -> dfs [] [] n)
    None nodes

let synthetic_finding rule msg =
  { f_file = "<lockdep>"; f_line = 0; f_col = 0; f_rule = rule;
    f_message = msg }

(* Cross-check restricted to the node set of the documented runtime
   graph: every documented edge must be statically derivable, and no
   extra edge may exist among those nodes. *)
let xcheck_findings edges =
  let nodes = dedup (List.concat_map (fun (a, b) -> [ a; b ]) expected_lockdep) in
  let scoped =
    List.filter (fun (a, b) -> List.mem a nodes && List.mem b nodes) edges
  in
  let missing =
    List.filter (fun e -> not (List.mem e scoped)) expected_lockdep
  in
  let extra =
    List.filter (fun e -> not (List.mem e expected_lockdep)) scoped
  in
  List.map
    (fun (a, b) ->
      synthetic_finding "lockdep-xcheck"
        (Printf.sprintf
           "runtime lockdep edge %s -> %s (DESIGN.md §5) was not derived \
            statically"
           a b))
    missing
  @ List.map
      (fun (a, b) ->
        synthetic_finding "lockdep-xcheck"
          (Printf.sprintf
             "statically derived edge %s -> %s is absent from the runtime \
              lockdep graph in DESIGN.md §5"
             a b))
      extra

(* ------------------------------------------------------------------ *)
(* Top-level analysis.                                                 *)

type report = {
  r_findings : finding list;
  r_edges : (string * string) list;
  r_units : int;
  r_functions : int;
  r_summaries : (string, summary) Hashtbl.t;
}

let analyze ?(xcheck = true) files =
  let findings = ref [] in
  let summaries : (string, summary) Hashtbl.t = Hashtbl.create 256 in
  List.iter (fun f -> analyze_cmt ~findings ~summaries f) files;
  fixpoint summaries;
  let checks = run_checks summaries in
  let edges = derive_edges summaries in
  let cycle =
    match find_cycle edges with
    | Some path ->
        [ synthetic_finding "lock-order"
            (Printf.sprintf "lock-order cycle: %s"
               (String.concat " -> " path)) ]
    | None -> []
  in
  let xc = if xcheck then xcheck_findings edges else [] in
  let all = List.rev !findings @ checks @ cycle @ xc in
  let sorted =
    List.sort
      (fun a b ->
        match compare a.f_file b.f_file with
        | 0 -> compare (a.f_line, a.f_col, a.f_rule) (b.f_line, b.f_col, b.f_rule)
        | c -> c)
      all
  in
  { r_findings = sorted; r_edges = edges; r_units = List.length files;
    r_functions = Hashtbl.length summaries; r_summaries = summaries }

(* ------------------------------------------------------------------ *)
(* Self-test: synthetic summaries driven through the rule pass, plus   *)
(* unit tests for attribute parsing, name normalization and the        *)
(* lock-order machinery.  Needs no .cmt input.                         *)

let self_test () =
  let errs = ref [] in
  let check name cond = if not cond then errs := name :: !errs in
  let mk ?(contract = no_contract) ?(waivers = []) ?(calls = [])
      ?(vas = []) ?(mas = []) ?(blocks = []) ?(opens = [])
      ?(balanced = true) id =
    { s_id = id; s_file = "<self-test>"; s_loc = Location.none;
      s_contract = contract; s_waivers = waivers; s_calls = calls;
      s_vlock_acqs = vas; s_mu_acqs = mas; s_blocks = blocks;
      s_opens = opens; s_epoch_balanced = balanced; x_blocks = None;
      x_acq_modes = []; x_mus = [] }
  in
  let cs ?(at = empty_site) ?(w = []) callee =
    { cs_callee = callee; cs_loc = Location.none; cs_at = at; cs_waivers = w }
  in
  let run sums =
    let h = Hashtbl.create 16 in
    List.iter (fun s -> Hashtbl.replace h s.s_id s) sums;
    fixpoint h;
    run_checks h
  in
  let has rule fs = List.exists (fun f -> f.f_rule = rule) fs in
  (* mode: call into a requires-update function with nothing held *)
  let callee_u =
    mk ~contract:{ no_contract with c_requires = Some Update } "T.apply"
  in
  check "mode fires"
    (has "mode" (run [ callee_u; mk ~calls:[ cs "T.apply" ] "T.entry" ]));
  check "mode ok when held"
    (not
       (has "mode"
          (run
             [ callee_u;
               mk
                 ~calls:
                   [ cs ~at:{ empty_site with st_mode = Some Update }
                       "T.apply" ]
                 "T.entry" ])));
  check "mode waived"
    (not
       (has "mode"
          (run [ callee_u; mk ~calls:[ cs ~w:[ "mode" ] "T.apply" ] "T.e" ])));
  (* mode downgrade along a chain: shared caller into exclusive callee *)
  let callee_x =
    mk ~contract:{ no_contract with c_requires = Some Exclusive } "T.deep"
  in
  check "mode chain downgrade"
    (has "mode"
       (run
          [ callee_x;
            mk
              ~contract:{ no_contract with c_requires = Some Shared }
              ~calls:
                [ cs ~at:{ empty_site with st_mode = Some Shared } "T.deep" ]
              "T.reader" ]));
  (* noblock: transitive through one hop *)
  let leaf =
    mk
      ~blocks:
        [ { bs_what = "Unix.fsync"; bs_loc = Location.none;
            bs_at = empty_site; bs_waivers = [] } ]
      "T.leaf"
  in
  let mid = mk ~calls:[ cs "T.leaf" ] "T.mid" in
  let top =
    mk
      ~contract:{ no_contract with c_noblock = true }
      ~calls:[ cs "T.mid" ] "T.top"
  in
  check "noblock transitive" (has "noblock" (run [ leaf; mid; top ]));
  check "noblock waived"
    (not
       (has "noblock"
          (run
             [ leaf; mid;
               mk
                 ~contract:{ no_contract with c_noblock = true }
                 ~waivers:[ "noblock" ] ~calls:[ cs "T.mid" ] "T.top" ])));
  (* deadlock: holding Update, callee may acquire Update *)
  let acq_u =
    mk
      ~vas:
        [ { va_mode = Some Update; va_loc = Location.none;
            va_at = empty_site; va_protected = true; va_waivers = [] } ]
      "T.acq"
  in
  check "deadlock interprocedural"
    (has "deadlock"
       (run
          [ acq_u;
            mk
              ~calls:
                [ cs ~at:{ empty_site with st_mode = Some Update } "T.acq" ]
              "T.holder" ]));
  check "shared reentry legal"
    (not
       (has "deadlock"
          (run
             [ mk
                 ~vas:
                   [ { va_mode = Some Shared; va_loc = Location.none;
                       va_at = empty_site; va_protected = true;
                       va_waivers = [] } ]
                 "T.racq";
               mk
                 ~calls:
                   [ cs ~at:{ empty_site with st_mode = Some Shared }
                       "T.racq" ]
                 "T.rholder" ])));
  (* io-under-mutex: direct, and exempt for `Vlock-kind classes *)
  let io_at mus =
    mk
      ~blocks:
        [ { bs_what = "closure .w_sync"; bs_loc = Location.none;
            bs_at = { empty_site with st_mus = mus }; bs_waivers = [] } ]
      "T.io"
  in
  check "io-under-mutex fires"
    (has "io-under-mutex" (run [ io_at [ ("fx.io", `Mutex) ] ]));
  check "io under vlock-kind token exempt"
    (not (has "io-under-mutex" (run [ io_at [ ("smalldb.ckpt", `Vlock) ] ])));
  (* epoch rules *)
  check "epoch-bracket fires"
    (has "epoch-bracket" (run [ mk ~balanced:false "T.eb" ]));
  check "epoch-safety fires"
    (has "epoch-safety"
       (run
          [ mk
              ~blocks:
                [ { bs_what = "Unix.read"; bs_loc = Location.none;
                    bs_at = { empty_site with st_epoch = 1 };
                    bs_waivers = [] } ]
              "T.es" ]));
  (* unprotected-acquire *)
  let oa protected =
    { oa_key = `V; oa_loc = Location.none; oa_waivers = [];
      oa_open = true; oa_protected = protected; oa_callees = [];
      oa_blocked = Some "Unix.fsync" }
  in
  check "unprotected-acquire fires"
    (has "unprotected-acquire" (run [ mk ~opens:[ oa false ] "T.ua" ]));
  check "protected acquire clean"
    (not (has "unprotected-acquire" (run [ mk ~opens:[ oa true ] "T.ua" ])));
  (* lock-order cycle detection *)
  check "cycle found"
    (find_cycle [ ("a", "b"); ("b", "c"); ("c", "a") ] <> None);
  check "expected lockdep acyclic" (find_cycle expected_lockdep = None);
  (* lockdep cross-check, both directions *)
  check "xcheck missing edges" (List.length (xcheck_findings []) = 2);
  check "xcheck clean" (xcheck_findings expected_lockdep = []);
  check "xcheck extra edge"
    (List.length
       (xcheck_findings (("smalldb.gc", "smalldb.ckpt") :: expected_lockdep))
    = 1);
  (* attribute parsing *)
  let noloc txt = { Location.txt; loc = Location.none } in
  let attr name payload = Ast_helper.Attr.mk (noloc name) payload in
  let word w =
    Parsetree.PStr
      [ Ast_helper.Str.eval
          (Ast_helper.Exp.ident (noloc (Longident.Lident w))) ]
  in
  let str s =
    Parsetree.PStr
      [ Ast_helper.Str.eval
          (Ast_helper.Exp.constant (Ast_helper.Const.string s)) ]
  in
  let bads = ref [] in
  let c =
    contract_of_attrs
      ~bad:(fun m -> bads := m :: !bads)
      [ attr "sdb.requires" (word "shared");
        attr "sdb.noblock" (Parsetree.PStr []);
        attr "sdb.bogus" (Parsetree.PStr []) ]
  in
  check "contract parse"
    (c.c_requires = Some Shared && c.c_noblock && not c.c_epoch_section);
  check "unknown attr flagged" (List.length !bads = 1);
  let badm = ref [] in
  let c2 =
    contract_of_attrs
      ~bad:(fun m -> badm := m :: !badm)
      [ attr "sdb.acquires" (word "sideways") ]
  in
  check "bad mode flagged" (c2.c_acquires = None && List.length !badm = 1);
  check "waiver parse"
    (waivers_of_attrs [ attr waiver_attr (str "io-under-mutex: reason") ]
    = [ "io-under-mutex" ]);
  check "waiver matches" (waives [ "io-under-mutex" ] "io-under-mutex");
  check "bare waiver waives all" (waives [ "*" ] "mode");
  (* name normalization *)
  check "strip mangle" (strip_mangle "sdb_wal__Wal" = "Wal");
  check "normalize wrapper"
    (normalize [ "Sdb_vlock"; "Vlock"; "acquire" ] = [ "Vlock"; "acquire" ]);
  check "normalize stdlib"
    (normalize [ "Stdlib"; "ignore" ] = [ "ignore" ]);
  check "class root" (class_root "smalldb.ckpt:orders" = "smalldb.ckpt");
  check "class root fallback" (class_root "mu:Smalldb.m" = "mu:Smalldb.m");
  check "rules documented"
    (List.for_all
       (fun r -> List.mem_assoc r rules)
       [ "mode"; "deadlock"; "noblock"; "io-under-mutex"; "epoch-bracket";
         "epoch-safety"; "lock-order"; "lockdep-xcheck";
         "unprotected-acquire"; "attr"; "read-error" ]);
  match !errs with
  | [] -> Ok ()
  | e -> Error (String.concat "; " (List.rev e))
