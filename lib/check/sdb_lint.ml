type finding = {
  f_file : string;
  f_line : int;
  f_col : int;
  f_rule : string;
  f_message : string;
}

let rules =
  [
    ( "unix-io",
      "direct Unix file I/O outside lib/storage (must route through Fs)" );
    ( "mutex-pairing",
      "Mutex.lock/Mu.lock without a matching unlock in the same definition" );
    ("print-in-lib", "stdout/stderr printing inside lib/ (use Sdb_obs)");
    ( "global-mutable",
      "module-level mutable state in a file with no synchronization primitive" );
    ( "swallow",
      "catch-all exception handler or unascribed ignore in lib/ (errors \
       vanish silently)" );
    ("parse-error", "file does not parse");
  ]

let render f =
  Printf.sprintf "%s:%d:%d: [%s] %s" f.f_file f.f_line f.f_col f.f_rule
    f.f_message

(* ------------------------------------------------------------------ *)
(* Path scoping                                                        *)

let components path = String.split_on_char '/' path

(* "lib" anywhere in the path keeps the rules working both on the repo
   tree (lib/core/smalldb.ml) and on test fixtures (tmp/xyz/lib/a.ml). *)
let rec has_seq seq l =
  match (seq, l) with
  | [], _ -> true
  | _, [] -> false
  | s :: srest, x :: xrest ->
    if String.equal s x && has_seq srest xrest then true else has_seq seq xrest

let in_lib path = List.mem "lib" (components path)
let in_storage path = has_seq [ "lib"; "storage" ] (components path)

(* ------------------------------------------------------------------ *)
(* Waivers                                                             *)

let waiver_attr = "sdb.lint.allow"

(* A waiver names its rule before ':' ("unix-io: reason"); a bare
   string or empty payload waives every rule for the subtree. *)
let waived_rules_of_attrs (attrs : Parsetree.attributes) =
  List.filter_map
    (fun (a : Parsetree.attribute) ->
      if not (String.equal a.attr_name.txt waiver_attr) then None
      else
        match a.attr_payload with
        | PStr
            [
              {
                pstr_desc =
                  Pstr_eval
                    ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
                _;
              };
            ] -> (
          match String.index_opt s ':' with
          | Some i -> Some (`Rule (String.trim (String.sub s 0 i)))
          | None -> Some `All)
        | _ -> Some `All)
    attrs

(* ------------------------------------------------------------------ *)
(* Identifier helpers                                                  *)

let rec flatten = function
  | Longident.Lident s -> [ s ]
  | Ldot (p, s) -> flatten p @ [ s ]
  | Lapply (p, _) -> flatten p

let forbidden_unix =
  [ "openfile"; "write"; "single_write"; "fsync"; "rename"; "unlink";
    "truncate"; "ftruncate" ]

let forbidden_prints =
  [
    [ "Printf"; "printf" ];
    [ "Printf"; "eprintf" ];
    [ "Format"; "printf" ];
    [ "Format"; "eprintf" ];
    [ "print_endline" ];
    [ "print_string" ];
    [ "print_newline" ];
    [ "prerr_endline" ];
    [ "prerr_string" ];
    [ "prerr_newline" ];
  ]

let sync_heads = [ "Vlock"; "Mutex"; "Mu"; "Atomic"; "Condition" ]

(* ------------------------------------------------------------------ *)
(* The linter                                                          *)

type ctx = {
  path : string;
  mutable findings : finding list;
  mutable waived : [ `Rule of string | `All ] list list;  (* a stack *)
  (* per-top-level-definition lock/unlock bookkeeping:
     (key, rule-loc, waivers active at the lock site) *)
  mutable locks : (string * Location.t * [ `Rule of string | `All ] list) list;
  mutable unlocks : string list;
  (* whole-file facts for global-mutable *)
  mutable uses_sync : bool;
  mutable globals : (string * Location.t * [ `Rule of string | `All ] list) list;
}

let active_waivers ctx = List.concat ctx.waived

let waived ctx rule waivers =
  List.exists
    (function `All -> true | `Rule r -> String.equal r rule)
    waivers
  || List.exists
       (function `All -> true | `Rule r -> String.equal r rule)
       (active_waivers ctx)

let report ctx rule (loc : Location.t) message =
  if not (waived ctx rule []) then
    ctx.findings <-
      {
        f_file = ctx.path;
        f_line = loc.loc_start.pos_lnum;
        f_col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol;
        f_rule = rule;
        f_message = message;
      }
      :: ctx.findings

(* Normalized print of a lock argument, the pairing key: "t.gc_mutex"
   and "t . gc_mutex" must compare equal. *)
let key_of_expr e =
  let s = Pprintast.string_of_expression e in
  String.concat ""
    (List.filter (fun c -> c <> "")
       (String.split_on_char ' '
          (String.map (function '\n' | '\t' -> ' ' | c -> c) s)
       |> List.map String.trim))

let lock_module last2 =
  match last2 with
  | [ m; _ ] -> String.equal m "Mutex" || String.equal m "Mu"
  | _ -> false

let last2 path = match List.rev path with b :: a :: _ -> [ a; b ] | l -> List.rev l

let iterate ctx (str : Parsetree.structure) =
  let open Ast_iterator in
  let expr_rules (e : Parsetree.expression) =
    match e.pexp_desc with
    | Pexp_ident { txt; loc } -> (
      match flatten txt with
      | [ "Unix"; fn ] when List.mem fn forbidden_unix ->
        if not (in_storage ctx.path) then
          report ctx "unix-io" loc
            (Printf.sprintf
               "direct Unix.%s bypasses Fs: fault injection and crash sweeps \
                cannot see it; route through lib/storage"
               fn)
      | p when in_lib ctx.path && List.mem p forbidden_prints ->
        report ctx "print-in-lib" loc
          (Printf.sprintf
             "%s writes to the process's std streams from library code; use \
              Sdb_obs (metrics/trace sinks) instead"
             (String.concat "." p))
      | p -> (
        match p with
        | head :: _ when List.mem head sync_heads -> ctx.uses_sync <- true
        | _ -> ()))
    | Pexp_try (_, cases) when in_lib ctx.path ->
      List.iter
        (fun (c : Parsetree.case) ->
          match c.pc_lhs.ppat_desc with
          | Ppat_any ->
            report ctx "swallow" c.pc_lhs.ppat_loc
              "catch-all `with _ ->` swallows every exception including \
               asserts and Out_of_memory; name the exceptions this handler \
               is allowed to eat"
          | _ -> ())
        cases
    | Pexp_apply
        ({ pexp_desc = Pexp_ident { txt; loc }; _ }, (Asttypes.Nolabel, arg) :: _)
      -> (
      let p = flatten txt in
      (match p with
      | [ "ignore" ] | [ "Stdlib"; "ignore" ] ->
        (* `ignore (e : t)` is a deliberate, type-checked discard; a bare
           `ignore e` silently drops whatever e became after a refactor. *)
        (match arg.pexp_desc with
        | Pexp_constraint _ -> ()
        | _ ->
          if in_lib ctx.path then
            report ctx "swallow" loc
              "ignore without a type ascription can silently discard a \
               result or error; write `ignore (e : t)` or bind the value")
      | _ -> ());
      match List.rev p with
      | verb :: _ when lock_module (last2 p) -> (
        let wrapper = match last2 p with m :: _ -> m | [] -> "" in
        let key = wrapper ^ ":" ^ key_of_expr arg in
        (* key is "lock-expr" scoped per wrapper module's last name so
           Mutex.lock a / Mu.unlock a do not pair with each other *)
        match verb with
        | "lock" ->
          ctx.locks <- (key, loc, active_waivers ctx) :: ctx.locks;
          ctx.uses_sync <- true
        | "unlock" ->
          ctx.unlocks <- key :: ctx.unlocks;
          ctx.uses_sync <- true
        | "with_lock" -> ctx.uses_sync <- true
        | _ -> ())
      | _ -> ())
    | _ -> ()
  in
  let it =
    {
      default_iterator with
      expr =
        (fun it e ->
          let w = waived_rules_of_attrs e.pexp_attributes in
          ctx.waived <- w :: ctx.waived;
          expr_rules e;
          default_iterator.expr it e;
          ctx.waived <- List.tl ctx.waived);
      structure_item =
        (fun it si ->
          let attrs =
            match si.pstr_desc with
            | Pstr_value (_, vbs) ->
              List.concat_map (fun vb -> vb.Parsetree.pvb_attributes) vbs
            | Pstr_attribute a -> [ a ]
            | _ -> []
          in
          let w = waived_rules_of_attrs attrs in
          ctx.waived <- w :: ctx.waived;
          (* global-mutable: a structure-level binding whose RHS builds
             a mutable container *)
          (match si.pstr_desc with
          | Pstr_value (_, vbs) ->
            List.iter
              (fun (vb : Parsetree.value_binding) ->
                match vb.pvb_expr.pexp_desc with
                | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
                  match flatten txt with
                  | [ "ref" ]
                  | [ ("Hashtbl" | "Queue" | "Buffer"); "create" ] ->
                    ctx.globals <-
                      ( Pprintast.string_of_expression vb.pvb_expr,
                        vb.pvb_loc,
                        active_waivers ctx )
                      :: ctx.globals
                  | _ -> ())
                | _ -> ())
              vbs
          | _ -> ());
          default_iterator.structure_item it si;
          ctx.waived <- List.tl ctx.waived)
    }
  in
  (* mutex-pairing is scoped per top-level definition: walk each item
     separately and settle its lock/unlock ledger before the next. *)
  List.iter
    (fun (si : Parsetree.structure_item) ->
      ctx.locks <- [];
      ctx.unlocks <- [];
      it.structure_item it si;
      List.iter
        (fun (key, loc, waivers) ->
          if not (List.mem key ctx.unlocks) then
            if not (waived ctx "mutex-pairing" waivers) then
              report ctx "mutex-pairing" loc
                (Printf.sprintf
                   "lock of %s has no matching unlock in this definition; \
                    every path (including exceptions) must release — use \
                    Fun.protect or with_lock"
                   (match String.index_opt key ':' with
                   | Some i ->
                     String.sub key (i + 1) (String.length key - i - 1)
                   | None -> key)))
        ctx.locks)
    str

let lint_source ~path contents =
  let ctx =
    {
      path;
      findings = [];
      waived = [];
      locks = [];
      unlocks = [];
      uses_sync = false;
      globals = [];
    }
  in
  (match
     let lexbuf = Lexing.from_string contents in
     Location.init lexbuf path;
     Parse.implementation lexbuf
   with
  | str ->
    iterate ctx str;
    if in_lib ctx.path && not ctx.uses_sync then
      List.iter
        (fun (what, loc, waivers) ->
          if not (waived ctx "global-mutable" waivers) then
            report ctx "global-mutable" loc
              (Printf.sprintf
                 "module-level mutable state (%s) in a file that never uses a \
                  synchronization primitive: two threads make this a data \
                  race; guard it or make it Atomic"
                 what))
        ctx.globals
  | exception e ->
    let loc, msg =
      match e with
      | Syntaxerr.Error err ->
        (Syntaxerr.location_of_error err, "syntax error")
      | e -> (Location.in_file path, Printexc.to_string e)
    in
    report ctx "parse-error" loc msg);
  List.rev ctx.findings

let lint_file path =
  let ic = open_in_bin path in
  let contents =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  lint_source ~path contents

let rec walk dir acc =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
    Array.sort compare entries;
    Array.fold_left
      (fun acc entry ->
        let full = Filename.concat dir entry in
        if String.length entry > 0 && entry.[0] = '.' then acc
        else if Sys.is_directory full then
          if String.equal entry "_build" then acc else walk full acc
        else if Filename.check_suffix entry ".ml" then full :: acc
        else acc)
      acc entries

let lint_dirs dirs =
  let files = List.fold_left (fun acc d -> walk d acc) [] dirs in
  List.concat_map lint_file (List.sort compare files)

(* ------------------------------------------------------------------ *)
(* Self-test: the gate must be able to prove it still fires            *)

let seeded : (string * string * string * int option) list =
  (* (rule expected, path, source, expected line (None = any)) *)
  [
    ( "unix-io",
      "lib/seeded/bad_unix.ml",
      "let f path =\n  Unix.unlink path\n",
      Some 2 );
    ( "mutex-pairing",
      "lib/seeded/bad_mutex.ml",
      "let m = Mutex.create ()\nlet f () =\n  Mutex.lock m;\n  work ()\n",
      Some 3 );
    ( "print-in-lib",
      "lib/seeded/bad_print.ml",
      "let f () = Printf.printf \"hello\"\n",
      Some 1 );
    ( "global-mutable",
      "lib/seeded/bad_global.ml",
      "let table = Hashtbl.create 16\nlet get k = Hashtbl.find_opt table k\n",
      Some 1 );
    ( "swallow",
      "lib/seeded/bad_try.ml",
      "let f () =\n  try work () with _ -> ()\n",
      Some 2 );
    ( "swallow",
      "lib/seeded/bad_ignore.ml",
      "let f x =\n  ignore (compute x)\n",
      Some 2 );
  ]

let waived_twins : (string * string * string) list =
  [
    ( "unix-io",
      "lib/seeded/ok_unix.ml",
      "let f path =\n\
      \  (Unix.unlink path [@sdb.lint.allow \"unix-io: self-test waiver\"])\n" );
    ( "print-in-lib",
      "lib/seeded/ok_print.ml",
      "let f () = (Printf.printf \"hello\" [@sdb.lint.allow \"print-in-lib: \
       self-test\"])\n" );
    ( "swallow",
      "lib/seeded/ok_try.ml",
      "let f () =\n\
      \  ((try work () with _ -> ()) [@sdb.lint.allow \"swallow: self-test\"])\n" );
    ( "swallow",
      "lib/seeded/ok_ignore.ml",
      "let f x = ignore (compute x : int)\n" );
  ]

let self_test () =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let rec check_seeded = function
    | [] -> Ok ()
    | (rule, path, src, line) :: rest -> (
      let fs = lint_source ~path src in
      match
        List.find_opt
          (fun f ->
            String.equal f.f_rule rule
            && match line with None -> true | Some l -> f.f_line = l)
          fs
      with
      | Some _ -> check_seeded rest
      | None ->
        fail "self-test: rule %s did not fire on seeded violation %s" rule path)
  in
  let rec check_waived = function
    | [] -> Ok ()
    | (rule, path, src) :: rest ->
      let fs = lint_source ~path src in
      if List.exists (fun f -> String.equal f.f_rule rule) fs then
        fail "self-test: waiver failed to suppress %s in %s" rule path
      else check_waived rest
  in
  let clean =
    lint_source ~path:"lib/seeded/clean.ml"
      "let m = Mutex.create ()\n\
       let f () =\n\
      \  Mutex.lock m;\n\
      \  Fun.protect ~finally:(fun () -> Mutex.unlock m) work\n"
  in
  match check_seeded seeded with
  | Error _ as e -> e
  | Ok () -> (
    match check_waived waived_twins with
    | Error _ as e -> e
    | Ok () ->
      if clean <> [] then
        fail "self-test: clean fixture produced findings: %s"
          (String.concat "; " (List.map render clean))
      else Ok ())
