type mode = Shared | Update | Exclusive | Mutex

let mode_name = function
  | Shared -> "shared"
  | Update -> "update"
  | Exclusive -> "exclusive"
  | Mutex -> "mutex"

(* Strength order for assert_mode; Mutex is its own kind. *)
let rank = function Shared -> 0 | Update -> 1 | Exclusive -> 2 | Mutex -> 3

let satisfies ~held ~want =
  match (held, want) with
  | Mutex, Mutex -> true
  | Mutex, _ | _, Mutex -> false
  | h, w -> rank h >= rank w

type violation = {
  v_rule : string;
  v_message : string;
  v_stacks : (string * string) list;
}

exception Violation of violation

let pp_violation v =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "[%s] %s" v.v_rule v.v_message);
  List.iter
    (fun (label, stack) ->
      Buffer.add_string b (Printf.sprintf "\n-- %s --\n%s" label
           (if String.trim stack = "" then "(no stack information)" else stack)))
    v.v_stacks;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Global state                                                        *)

let enabled_flag =
  Atomic.make
    (match Sys.getenv_opt "SDB_SANITIZE" with
    | Some ("1" | "true" | "yes" | "on") -> true
    | _ -> false)

let set_enabled v = Atomic.set enabled_flag v
let enabled () = Atomic.get enabled_flag

type lock = { l_id : int; l_class : string; l_kind : [ `Vlock | `Mutex ] }

let lock_name l = l.l_class

let next_lock_id = Atomic.make 0

let make_lock ?(kind = `Mutex) name =
  { l_id = Atomic.fetch_and_add next_lock_id 1; l_class = name; l_kind = kind }

type held = { h_lock : lock; mutable h_mode : mode }

(* Everything below is guarded by [st_mutex] — a raw, untracked mutex:
   the sanitizer's own lock is a leaf by construction (no instrumented
   call runs while it is held) and must not feed its own graph. *)
let st_mutex = Stdlib.Mutex.create ()

(* Per-thread hold stacks, newest first, keyed by systhread id.  An
   entry is removed as soon as its stack empties, so dead threads do
   not accumulate. *)
let threads : (int, held list ref) Hashtbl.t = Hashtbl.create 64

(* Class-level lock-order graph: edge (a, b) means some thread acquired
   class b while holding class a.  The stack recorded is the first
   observation of the edge. *)
let edges : (string * string, string) Hashtbl.t = Hashtbl.create 64
let succs : (string, string list ref) Hashtbl.t = Hashtbl.create 64

let violation_log : violation list ref = ref []

(* Re-entry probes, keyed by lock instance id: a counting read lock
   (the Vlock) registers a closure answering "does the calling thread
   hold this lock Shared according to my own ownership registry?".
   Nested Shared is then verified against the lock's ground truth
   instead of being excused on the sanitizer's say-so.  Probes survive
   [reset]: they describe live lock instances, not per-run state. *)
let reentry_probes : (int, unit -> bool) Hashtbl.t = Hashtbl.create 16

(* Per-thread epoch nesting depth, keyed by systhread id.  Entries are
   removed when the depth returns to zero, like [threads]. *)
let epochs : (int, int ref) Hashtbl.t = Hashtbl.create 64

(* counters; plain ints under st_mutex except checks, which is hot *)
let n_checks = Atomic.make 0
let n_violations = ref 0
let max_depth = ref 0

type stats = { checks : int; violations : int; max_lock_depth : int }

let locked f =
  Stdlib.Mutex.lock st_mutex;
  Fun.protect ~finally:(fun () -> Stdlib.Mutex.unlock st_mutex) f

let stats () =
  locked (fun () ->
      {
        checks = Atomic.get n_checks;
        violations = !n_violations;
        max_lock_depth = !max_depth;
      })

let violations () = locked (fun () -> List.rev !violation_log)

let lock_order_edges () =
  locked (fun () ->
      Hashtbl.fold (fun e _ acc -> e :: acc) edges []
      |> List.sort compare)

let reset () =
  locked (fun () ->
      Hashtbl.reset threads;
      Hashtbl.reset epochs;
      Hashtbl.reset edges;
      Hashtbl.reset succs;
      violation_log := [];
      Atomic.set n_checks 0;
      n_violations := 0;
      max_depth := 0)

let capture_stack () =
  Printexc.raw_backtrace_to_string (Printexc.get_callstack 48)

(* Record and raise.  Called with st_mutex held. *)
let violate ~rule ~message ~stacks =
  let v = { v_rule = rule; v_message = message; v_stacks = stacks } in
  incr n_violations;
  violation_log := v :: !violation_log;
  raise (Violation v)

let tid () = Thread.id (Thread.self ())

let set_reentry_probe l probe =
  locked (fun () -> Hashtbl.replace reentry_probes l.l_id probe)

let stack_of_thread id =
  match Hashtbl.find_opt threads id with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.replace threads id r;
    r

let describe_held held =
  match held with
  | [] -> "no instrumented lock"
  | l ->
    String.concat ", "
      (List.map (fun h -> Printf.sprintf "%s(%s)" h.h_lock.l_class (mode_name h.h_mode)) l)

(* Is [target] reachable from [from] in the class graph?  Returns the
   path (edge list) if so. *)
let find_path ~from ~target =
  let visited = Hashtbl.create 16 in
  let rec go node path =
    if String.equal node target then Some (List.rev path)
    else if Hashtbl.mem visited node then None
    else begin
      Hashtbl.replace visited node ();
      match Hashtbl.find_opt succs node with
      | None -> None
      | Some nexts ->
        List.fold_left
          (fun acc next ->
            match acc with
            | Some _ -> acc
            | None -> go next ((node, next) :: path))
          None !nexts
    end
  in
  go from []

let add_edge ~held_class ~new_class stack =
  if not (Hashtbl.mem edges (held_class, new_class)) then begin
    (* Before inserting, check whether the reverse direction is already
       reachable: held -> new plus an existing path new ~> held is a
       cycle, i.e. two threads can interleave into a deadlock. *)
    (match find_path ~from:new_class ~target:held_class with
    | Some path ->
      let stacks =
        ( Printf.sprintf "acquiring %s while holding %s (this thread)" new_class
            held_class,
          stack )
        :: List.map
             (fun (a, b) ->
               ( Printf.sprintf "prior acquisition of %s while holding %s" b a,
                 match Hashtbl.find_opt edges (a, b) with
                 | Some s -> s
                 | None -> "(stack not recorded)" ))
             path
      in
      violate ~rule:"lock-order"
        ~message:
          (Printf.sprintf
             "lock-order cycle: %s -> %s contradicts the established order %s"
             held_class new_class
             (String.concat " -> "
                (match path with
                | (a, _) :: _ -> a :: List.map snd path
                | [] -> [ new_class; held_class ])))
        ~stacks
    | None -> ());
    Hashtbl.replace edges (held_class, new_class) stack;
    let r =
      match Hashtbl.find_opt succs held_class with
      | Some r -> r
      | None ->
        let r = ref [] in
        Hashtbl.replace succs held_class r;
        r
    in
    if not (List.mem new_class !r) then r := new_class :: !r
  end

let note_acquire l mode =
  if enabled () then begin
    Atomic.incr n_checks;
    locked (fun () ->
        let stack = stack_of_thread (tid ()) in
        let held = !stack in
        (* Same-instance re-acquisition is self-deadlock (mutex, or a
           vlock writer mode: update excludes update) — except the
           recursive read: a vlock counts its shared holders and keeps
           a per-thread ownership registry, so nested Shared on the
           {e same} instance is part of its contract, including under a
           pending upgrade (a registered reader passes the gate; the
           old deadlock is gone and lib/schedcheck enumerates the
           interleavings to prove it).  Where the lock registered a
           re-entry probe, the claim is verified against its registry
           rather than taken from our own stack.  Same-class nesting
           across instances is a deadlock hazard once a second thread
           nests in the other order, and no code path in this repo
           needs it. *)
        let recursive_read h =
          h.h_lock.l_id = l.l_id && l.l_kind = `Vlock && mode = Shared
          && h.h_mode = Shared
        in
        (match
           List.find_opt (fun h -> String.equal h.h_lock.l_class l.l_class) held
         with
        | Some h when recursive_read h -> (
          match Hashtbl.find_opt reentry_probes l.l_id with
          | Some probe when not (probe ()) ->
            violate ~rule:"nesting"
              ~message:
                (Printf.sprintf
                   "nested shared acquisition of %s, but the lock's reader \
                    registry has no shared hold for this thread (released \
                    from another thread?)"
                   l.l_class)
              ~stacks:[ ("acquisition site", capture_stack ()) ]
          | _ -> ())
        | Some h ->
          let bt = capture_stack () in
          violate ~rule:"nesting"
            ~message:
              (Printf.sprintf
                 "%s acquisition of class %s while already holding %s in %s mode"
                 (if h.h_lock.l_id = l.l_id then "re-entrant" else "same-class")
                 l.l_class h.h_lock.l_class (mode_name h.h_mode))
            ~stacks:[ ("acquisition site", bt) ]
        | None -> ());
        if held <> [] then begin
          let bt = capture_stack () in
          List.iter
            (fun h ->
              if not (String.equal h.h_lock.l_class l.l_class) then
                add_edge ~held_class:h.h_lock.l_class ~new_class:l.l_class bt)
            held
        end;
        stack := { h_lock = l; h_mode = mode } :: held;
        let d = List.length !stack in
        if d > !max_depth then max_depth := d)
  end

let note_release l mode =
  if enabled () then begin
    Atomic.incr n_checks;
    locked (fun () ->
        let id = tid () in
        let stack = stack_of_thread id in
        match
          List.partition
            (fun h -> h.h_lock.l_id = l.l_id && h.h_mode = mode)
            !stack
        with
        | h :: extra, rest ->
          ignore (h : held);
          stack := extra @ rest;
          if !stack = [] then Hashtbl.remove threads id
        | [], _ ->
          violate ~rule:"nesting"
            ~message:
              (Printf.sprintf
                 "release of %s (%s) by a thread that does not hold it (holds: %s)"
                 l.l_class (mode_name mode) (describe_held !stack))
            ~stacks:[ ("release site", capture_stack ()) ])
  end

let change_mode l ~expect ~to_ ~what =
  if enabled () then begin
    Atomic.incr n_checks;
    locked (fun () ->
        let stack = stack_of_thread (tid ()) in
        match List.find_opt (fun h -> h.h_lock.l_id = l.l_id) !stack with
        | Some h when h.h_mode = expect -> h.h_mode <- to_
        | Some h ->
          violate ~rule:"mode"
            ~message:
              (Printf.sprintf "%s of %s while holding it in %s mode (need %s)"
                 what l.l_class (mode_name h.h_mode) (mode_name expect))
            ~stacks:[ (what ^ " site", capture_stack ()) ]
        | None ->
          violate ~rule:"mode"
            ~message:
              (Printf.sprintf "%s of %s by a thread that does not hold it" what
                 l.l_class)
            ~stacks:[ (what ^ " site", capture_stack ()) ])
  end

let note_upgrade l = change_mode l ~expect:Update ~to_:Exclusive ~what:"upgrade"
let note_downgrade l = change_mode l ~expect:Exclusive ~to_:Update ~what:"downgrade"

let held_mode l =
  if not (enabled ()) then None
  else
    locked (fun () ->
        match Hashtbl.find_opt threads (tid ()) with
        | None -> None
        | Some stack ->
          List.find_opt (fun h -> h.h_lock.l_id = l.l_id) !stack
          |> Option.map (fun h -> h.h_mode))

let assert_mode l want ~site =
  if enabled () then begin
    Atomic.incr n_checks;
    locked (fun () ->
        let held =
          match Hashtbl.find_opt threads (tid ()) with
          | None -> []
          | Some s -> !s
        in
        let ok =
          List.exists
            (fun h -> h.h_lock.l_id = l.l_id && satisfies ~held:h.h_mode ~want)
            held
        in
        if not ok then
          violate ~rule:"mode"
            ~message:
              (Printf.sprintf "%s: requires %s held in %s mode; thread holds %s"
                 site l.l_class (mode_name want) (describe_held held))
            ~stacks:[ (site, capture_stack ()) ])
  end

let assert_no_mutex_held_during_io ~site =
  if enabled () then begin
    Atomic.incr n_checks;
    locked (fun () ->
        let held =
          match Hashtbl.find_opt threads (tid ()) with
          | None -> []
          | Some s -> !s
        in
        (match Hashtbl.find_opt epochs (tid ()) with
        | Some d when !d > 0 ->
          violate ~rule:"io"
            ~message:
              (Printf.sprintf
                 "%s: blocking I/O inside an epoch (depth %d) — an epoch held \
                  across I/O stalls reclamation for every retired version"
                 site !d)
            ~stacks:[ (site, capture_stack ()) ]
        | _ -> ());
        match List.filter (fun h -> h.h_lock.l_kind = `Mutex) held with
        | [] -> ()
        | mutexes ->
          violate ~rule:"io"
            ~message:
              (Printf.sprintf
                 "%s: blocking I/O while holding %s — mutexes must be released \
                  before I/O (Vlock modes are allowed)"
                 site (describe_held mutexes))
            ~stacks:[ (site, capture_stack ()) ])
  end

(* ------------------------------------------------------------------ *)
(* Epoch bracketing                                                    *)

let note_epoch_enter ~name:_ =
  if enabled () then begin
    Atomic.incr n_checks;
    locked (fun () ->
        let id = tid () in
        match Hashtbl.find_opt epochs id with
        | Some d -> incr d
        | None -> Hashtbl.replace epochs id (ref 1))
  end

let note_epoch_exit ~name =
  if enabled () then begin
    Atomic.incr n_checks;
    locked (fun () ->
        let id = tid () in
        match Hashtbl.find_opt epochs id with
        | Some d when !d > 0 ->
          decr d;
          if !d = 0 then Hashtbl.remove epochs id
        | _ ->
          violate ~rule:"epoch"
            ~message:
              (Printf.sprintf
                 "%s: epoch exit without a matching enter — reads must be \
                  bracketed by enter/exit"
                 name)
            ~stacks:[ ("exit site", capture_stack ()) ])
  end

let epoch_depth () =
  if not (enabled ()) then 0
  else
    locked (fun () ->
        match Hashtbl.find_opt epochs (tid ()) with
        | Some d -> !d
        | None -> 0)

let epoch_violation ~name ~message =
  if enabled () then begin
    Atomic.incr n_checks;
    locked (fun () ->
        violate ~rule:"epoch"
          ~message:(Printf.sprintf "%s: %s" name message)
          ~stacks:[ ("detection site", capture_stack ()) ])
  end

(* ------------------------------------------------------------------ *)
(* Instrumented mutex                                                  *)

module Mu = struct
  type t = { checker : lock; m : Stdlib.Mutex.t }

  let create checker = { checker; m = Stdlib.Mutex.create () }
  let make ?(kind = `Mutex) name = create (make_lock ~kind name)

  let lock t =
    note_acquire t.checker Mutex;
    Stdlib.Mutex.lock t.m

  let unlock t =
    note_release t.checker Mutex;
    Stdlib.Mutex.unlock t.m

  let with_lock t f =
    lock t;
    Fun.protect ~finally:(fun () -> unlock t) f

  let raw t = t.m
  let wait c t = Condition.wait c t.m
  let checker t = t.checker
end

(* ------------------------------------------------------------------ *)
(* Guarded fields                                                      *)

module Guarded = struct
  type 'a t = { g_by : lock; g_name : string; mutable g_v : 'a }

  let create ~by ~name v = { g_by = Mu.checker by; g_name = name; g_v = v }

  let check g op =
    if enabled () then begin
      Atomic.incr n_checks;
      locked (fun () ->
          let held =
            match Hashtbl.find_opt threads (tid ()) with
            | None -> []
            | Some s -> !s
          in
          if not (List.exists (fun h -> h.h_lock.l_id = g.g_by.l_id) held) then
            violate ~rule:"guard"
              ~message:
                (Printf.sprintf "%s of field %s without holding its guard %s \
                                 (thread holds %s)"
                   op g.g_name g.g_by.l_class (describe_held held))
              ~stacks:[ (op ^ " site", capture_stack ()) ])
    end

  let get g =
    check g "read";
    g.g_v

  let set g v =
    check g "write";
    g.g_v <- v
end
