(* Interprocedural lock-mode & effect checker over .cmt typedtrees.

   See sdb_modecheck.ml for the full story.  The CLI wrapper lives in
   bin/sdb_modecheck.ml; test/test_modecheck.ml drives [analyze] over
   seeded-violation fixtures and the real tree. *)

type vmode = Shared | Update | Exclusive

val mode_rank : vmode -> int
val mode_name : vmode -> string
val mode_of_string : string -> vmode option

type finding = {
  f_file : string;
  f_line : int;
  f_col : int;
  f_rule : string;
  f_message : string;
}

(* rule name -> one-line description, for --rules *)
val rules : (string * string) list
val render : finding -> string

val waiver_attr : string
val waivers_of_attrs : Parsetree.attributes -> string list
val waives : string list -> string -> bool

type contract = {
  c_requires : vmode option;
  c_acquires : vmode option;
  c_noblock : bool;
  c_epoch_section : bool;
}

val no_contract : contract
val contract_of_attrs : bad:(string -> unit) -> Parsetree.attributes -> contract

type mu_kind = [ `Mutex | `Vlock ]

type site = {
  st_mode : vmode option;
  st_mus : (string * mu_kind) list;
  st_epoch : int;
}

val empty_site : site

type callsite = {
  cs_callee : string;
  cs_loc : Location.t;
  cs_at : site;
  cs_waivers : string list;
}

type vlock_acq = {
  va_mode : vmode option;
  va_loc : Location.t;
  va_at : site;
  va_protected : bool;
  va_waivers : string list;
}

type mu_acq = {
  ma_class : string;
  ma_kind : mu_kind;
  ma_loc : Location.t;
  ma_at : site;
  ma_protected : bool;
  ma_waivers : string list;
}

type block_site = {
  bs_what : string;
  bs_loc : Location.t;
  bs_at : site;
  bs_waivers : string list;
}

type open_acq = {
  oa_key : [ `V | `M of string ];
  oa_loc : Location.t;
  oa_waivers : string list;
  mutable oa_open : bool;
  mutable oa_protected : bool;
  mutable oa_callees : string list;
  mutable oa_blocked : string option;
}

type summary = {
  s_id : string;
  s_file : string;
  s_loc : Location.t;
  s_contract : contract;
  s_waivers : string list;
  s_calls : callsite list;
  s_vlock_acqs : vlock_acq list;
  s_mu_acqs : mu_acq list;
  s_blocks : block_site list;
  s_opens : open_acq list;
  s_epoch_balanced : bool;
  mutable x_blocks : string option;
  mutable x_acq_modes : vmode list;
  mutable x_mus : (string * mu_kind) list;
}

(* The runtime lockdep DAG documented in DESIGN.md §5. *)
val expected_lockdep : (string * string) list

(* Collect .cmt files under the given roots (descends into the dotted
   .objs directories dune uses for artifacts). *)
val walk_cmts : string list -> string list

type report = {
  r_findings : finding list;
  r_edges : (string * string) list;
  r_units : int;
  r_functions : int;
  r_summaries : (string, summary) Hashtbl.t;
}

(* Analyze the given .cmt files: per-function summaries, call-graph
   fixpoint, rule checks, lock-order derivation.  [xcheck] (default
   true) also compares the derived DAG against [expected_lockdep] —
   disable it for partial trees and fixtures. *)
val analyze : ?xcheck:bool -> string list -> report

(* Synthetic-summary exercises of every rule; no .cmt input needed. *)
val self_test : unit -> (unit, string) result
