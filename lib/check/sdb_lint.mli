(** The repo lint: compiler-libs parsetree iteration enforcing the
    repository's concurrency and I/O discipline over [lib/] and [bin/]
    (DESIGN.md §5 lists the rules and their rationale).

    Rules:
    - [unix-io] — no direct [Unix.openfile]/[write]/[single_write]/
      [fsync]/[rename]/[unlink]/[truncate]/[ftruncate] outside
      [lib/storage]: all file I/O must route through [Fs], so the
      fault-injecting decorator and the crash sweeps see every byte.
      (Socket calls such as [Unix.write_substring] on an fd are not
      file I/O and are not flagged.)
    - [mutex-pairing] — every [Mutex.lock m] / [Mu.lock m] must have a
      matching [Mutex.unlock m] / [Mu.unlock m] (same lock expression)
      within the same top-level definition; prefer [Fun.protect] or
      [Mu.with_lock], which pair by construction.
    - [print-in-lib] — no [Printf.printf]/[print_endline]/
      [prerr_endline]/[Format.printf] etc. in [lib/]: a library never
      owns stdout/stderr; observability routes through [Sdb_obs].
    - [global-mutable] — a module-level [ref]/[Hashtbl.create]/
      [Queue.create]/[Buffer.create] in a [lib/] file that never
      touches a synchronization primitive (Vlock, Mutex, Mu, Atomic) is
      unsynchronized shared state waiting for a second thread.

    A finding can be waived at the offending expression or its
    enclosing definition with an attribute carrying the rule id and a
    justification, e.g.
    [(Unix.unlink path [@sdb.lint.allow "unix-io: unix-domain socket, \
     not a data file"])]. *)

type finding = {
  f_file : string;
  f_line : int;
  f_col : int;
  f_rule : string;
  f_message : string;
}

val rules : (string * string) list
(** (id, one-line description) for every rule, in report order. *)

val lint_source : path:string -> string -> finding list
(** Lint one compilation unit given as a string.  [path] (with ['/']
    separators) decides rule scoping: [lib/storage/] is exempt from
    [unix-io], only [lib/] is subject to [print-in-lib] and
    [global-mutable]. *)

val lint_file : string -> finding list
(** Read and lint one [.ml] file. *)

val lint_dirs : string list -> finding list
(** Recursively lint every [.ml] file under the given directories
    (skipping [_build] and dot-directories), sorted by path. *)

val render : finding -> string
(** ["file:line:col: [rule] message"]. *)

val self_test : unit -> (unit, string) result
(** Lint a built-in set of seeded violations and a waived twin of each;
    [Error] describes the first rule that failed to fire (or fired
    through a waiver).  The CI lint job runs this so the gate can trust
    the gatekeeper. *)
