(** Runtime lock-discipline sanitizer (§5 of DESIGN.md).

    The engine's correctness story rests on lock discipline: enquiries
    run under [Shared], updates verify and log under [Update], and
    virtual-memory mutation happens only under [Exclusive]; the
    auxiliary mutexes (group-commit coordinator, replica outboxes, RPC
    queues) each guard a declared set of fields and are never held
    across blocking I/O.  This module is the opt-in debug registry that
    {e verifies} those invariants while the ordinary test suite and the
    chaos sweeps run:

    - every instrumented lock reports acquisitions and releases, giving
      a per-thread stack of held (lock, mode) pairs;
    - mutation sites assert the mode they require ({!assert_mode});
    - I/O sites assert that no plain mutex is held
      ({!assert_no_mutex_held_during_io});
    - fields declare their guard ({!Guarded}) and every access checks
      it;
    - every {e nested} acquisition records a class-level edge in a
      lock-order graph; an edge that closes a cycle — a potential
      deadlock — fails fast with the acquisition stacks of both sides.

    Enabled via [SDB_SANITIZE=1] in the environment (read once at
    start-up) or programmatically with {!set_enabled}.  Disabled (the
    default), every entry point is a single atomic load and branch, so
    instrumented code pays no measurable cost.

    The registry is process-global and fail-fast: a violation raises
    {!Violation} at the offending call site and is also retained for
    {!violations}, so a worker thread that dies on one still fails the
    test that spawned it. *)

type mode = Shared | Update | Exclusive | Mutex
(** The three Vlock modes plus plain mutual exclusion.  For
    {!assert_mode}, strength is ordered [Shared < Update < Exclusive]:
    holding [Exclusive] satisfies a requirement for [Update] or
    [Shared], holding [Update] satisfies [Shared].  [Mutex] is its own
    kind and is never compared by strength. *)

type violation = {
  v_rule : string;
      (** ["lock-order"], ["mode"], ["guard"], ["io"], ["nesting"],
          ["epoch"] *)
  v_message : string;
  v_stacks : (string * string) list;
      (** Labelled call stacks: always the offending site, plus — for a
          lock-order cycle — the first-recorded stack of every edge on
          the pre-existing return path. *)
}

exception Violation of violation

val pp_violation : violation -> string
(** Multi-line rendering: message followed by each labelled stack. *)

(** {1 Enabling} *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Clear all per-thread state, the lock-order graph, the retained
    violations and the counters (the enabled flag is kept).  For
    tests. *)

(** {1 Locks} *)

type lock
(** An instrumented lock {e instance}.  Each instance belongs to a
    {e class} named at creation; the lock-order graph and its cycle
    check work on classes (as in lockdep), so two peers' outbox mutexes
    — same class, different instances — are ordered as one node. *)

val make_lock : ?kind:[ `Vlock | `Mutex ] -> string -> lock
(** A new instance of class [name].  [`Mutex] instances are what
    {!assert_no_mutex_held_during_io} looks for; [`Vlock] instances
    carry [Shared]/[Update]/[Exclusive] modes. *)

val lock_name : lock -> string

val note_acquire : lock -> mode -> unit
(** Record that the calling thread is acquiring [lock].  Call {e
    before} blocking on the real primitive: the cycle check then fires
    before the deadlock it predicts can bite.  Raises {!Violation} on a
    lock-order cycle or on nested acquisition within one class (which
    includes re-acquiring the same instance).  The one legal nesting is
    the recursive read — [Shared] on a [`Vlock] instance the thread
    already holds [Shared]; when the lock registered a
    {!set_reentry_probe}, that claim is verified against the lock's own
    reader registry and a mismatch is a ["nesting"] violation. *)

val set_reentry_probe : lock -> (unit -> bool) -> unit
(** Register the lock's own answer to "does the calling thread hold me
    Shared?".  The Vlock installs its reader-ownership registry here at
    creation, turning the nested-read allowance from an exemption into
    a cross-checked fact.  Probes are per-instance and survive
    {!reset}. *)

val note_release : lock -> mode -> unit

val note_upgrade : lock -> unit
(** A held [Update] becomes [Exclusive] in place. *)

val note_downgrade : lock -> unit

val held_mode : lock -> mode option
(** The mode in which the calling thread holds this instance, if any. *)

(** {1 Assertions} *)

val assert_mode : lock -> mode -> site:string -> unit
(** The calling thread must hold [lock] in at least [mode] (see
    {!mode} for the strength order).  No-op when disabled. *)

val assert_no_mutex_held_during_io : site:string -> unit
(** The calling thread must hold no [`Mutex]-kind instrumented lock:
    blocking I/O (a log write, an fsync, an RPC) under a mutex is how
    one slow disk stalls every thread behind that mutex.  Vlock modes
    are {e allowed} — the paper's design deliberately writes the log
    under [Update].  The thread must also be outside any epoch
    ({!note_epoch_enter}): an epoch held across blocking I/O pins every
    version retired since, stalling reclamation store-wide. *)

(** {1 Epoch bracketing}

    The lock-free read path ([Sdb_epoch]) reports its enter/exit pairs
    here, giving the sanitizer a per-thread epoch depth.  The rules it
    enforces: an exit must match an enter (["epoch"] violation
    otherwise), no blocking I/O may run inside an epoch (folded into
    {!assert_no_mutex_held_during_io}), and the epoch layer's own
    detectors — use-after-reclaim above all — report through
    {!epoch_violation}. *)

val note_epoch_enter : name:string -> unit
(** The calling thread entered an epoch of the named store. *)

val note_epoch_exit : name:string -> unit
(** The calling thread left an epoch; raises an ["epoch"] {!Violation}
    when it is not inside one. *)

val epoch_depth : unit -> int
(** The calling thread's epoch nesting depth (0 when disabled). *)

val epoch_violation : name:string -> message:string -> unit
(** Record and raise an ["epoch"] violation detected by the epoch
    layer's own verifier (e.g. a reader dereferencing a version that
    reclamation already freed).  No-op when disabled. *)

(** {1 Instrumented mutex} *)

module Mu : sig
  (** A [Mutex.t] that reports to the registry.  Drop-in for the
      lock/unlock pattern; [raw] exposes the underlying mutex for
      [Condition.wait] (the registry keeps treating the lock as held
      across the wait, which is the convention lock-order analysis
      wants: the waiter resumes holding it). *)

  type t

  val create : lock -> t
  (** One instance handle per [Mu.t]: create a fresh {!lock} per
      mutex, sharing the class name across instances of one family. *)

  val make : ?kind:[ `Vlock | `Mutex ] -> string -> t
  (** [make name] = [create (make_lock ~kind:`Mutex name)]. *)

  val lock : t -> unit
  val unlock : t -> unit

  val with_lock : t -> (unit -> 'a) -> 'a
  (** Lock, run, unlock (also on exception). *)

  val raw : t -> Mutex.t

  val wait : Condition.t -> t -> unit
  (** [Condition.wait c (raw t)]. *)

  val checker : t -> lock
end

(** {1 Guarded fields} *)

module Guarded : sig
  (** A mutable cell that declares its guard: every read and write
      asserts (when enabled) that the calling thread holds the given
      {!Mu.t}.  This is how the group-commit coordinator's shared state
      and the replica outboxes make their locking contract checkable
      instead of a comment. *)

  type 'a t

  val create : by:Mu.t -> name:string -> 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
end

(** {1 Counters and reports} *)

type stats = {
  checks : int;  (** assertions + acquisition notes processed *)
  violations : int;
  max_lock_depth : int;  (** deepest per-thread hold stack observed *)
}

val stats : unit -> stats

val violations : unit -> violation list
(** Every violation raised since start (or {!reset}), oldest first. *)

val lock_order_edges : unit -> (string * string) list
(** The observed class-level lock-order graph, as (held, acquired)
    pairs — the DAG documented in DESIGN.md §5 is this list. *)
