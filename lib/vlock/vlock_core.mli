(** The lock protocol itself, functored over its synchronization
    primitives.

    The algorithm (the paper's three-mode lock plus the reader-ownership
    registry that makes nested Shared acquisitions safe under a pending
    upgrade) lives here, written against {!SYNC} — a mutex, a condition
    variable, and a thread identity.  Two instantiations exist:

    - {!Thread_sync}: the real systhreads primitives.  {!Vlock} wraps
      this instantiation with metrics and sanitizer instrumentation; it
      is what the engine runs.
    - [Sdb_schedcheck.Scenarios.Vsync]: the schedule-exploration
      harness's virtual primitives, where every lock/wait/wake is a
      scheduling point under a deterministic cooperative scheduler.
      This is how {e the same code} that runs in production is model
      checked across bounded interleavings.

    Keeping one copy of the protocol is the point: a fix proven by the
    harness is the fix the engine ships, not a vendored model of it. *)

module type SYNC = sig
  type mutex
  type cond

  val make_mutex : unit -> mutex
  val make_cond : unit -> cond
  val lock : mutex -> unit
  val unlock : mutex -> unit

  val wait : cond -> mutex -> unit
  (** Atomically release the mutex and park until {!broadcast}; the
      mutex is re-held on return.  May raise (an async interrupt, a
      simulated fault): the protocol unwinds its waiter accounting and
      re-raises. *)

  val broadcast : cond -> unit

  val self : unit -> int
  (** Identity of the calling thread — the key of the reader-ownership
      registry.  Must be stable for the duration of a hold. *)
end

type mode = Shared | Update | Exclusive

type stats = {
  shared_acquisitions : int;
  update_acquisitions : int;
  exclusive_acquisitions : int;
  upgrades : int;
}

type waiting = {
  waiting_shared : int;
  waiting_update : int;
  waiting_exclusive : int;
}

type inspection = {
  i_readers : int;
  i_update : bool;
  i_exclusive : bool;
  i_upgrade_pending : bool;
  i_hold_sum : int;  (** sum of all per-thread shared hold counts *)
  i_waiting : waiting;
}

module type S = sig
  type t

  val create : ?legacy_recursive_block:bool -> unit -> t
  (** [legacy_recursive_block:true] restores the pre-fix semantics in
      which {e every} Shared acquisition — including a nested one by a
      thread that already holds Shared — parks behind a pending
      upgrade.  That gate is the recursive-read deadlock: the upgrader
      waits for the reader to drain while the reader waits for the
      upgrade to clear.  It exists only so the schedule-exploration
      harness can reproduce the bug as a regression; the engine always
      runs with the fix. *)

  val acquire : t -> mode -> unit
  val release : t -> mode -> unit
  val upgrade : t -> unit
  val downgrade : t -> unit

  val readers : t -> int
  val shared_hold_count : t -> int
  (** The calling thread's entry in the reader-ownership registry: how
      many Shared holds it currently has on this lock (0 if none). *)

  val update_held : t -> bool
  val exclusive_held : t -> bool
  val upgrade_pending : t -> bool
  val waiters : t -> mode -> int
  val waiting : t -> waiting
  val stats : t -> stats

  val inspect : t -> inspection
  (** Read every protocol field {e without} taking the internal mutex.
      For schedule-exploration invariants (which run from the scheduler,
      outside any modeled thread, where taking a virtual mutex is
      meaningless) and post-mortem debugging.  Under real threads the
      fields may be mid-change; do not build logic on it. *)
end

module Make (Sync : SYNC) : S

module Thread_sync : SYNC
(** The real primitives: [Mutex], [Condition], [Thread.id]. *)
