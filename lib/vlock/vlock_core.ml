(* The three-mode lock protocol, functored over its synchronization
   primitives so the schedule-exploration harness (lib/schedcheck) can
   run the exact engine algorithm under a virtual scheduler.  No
   metrics, no sanitizer here: Vlock layers those onto the Thread_sync
   instantiation. *)

module type SYNC = sig
  type mutex
  type cond

  val make_mutex : unit -> mutex
  val make_cond : unit -> cond
  val lock : mutex -> unit
  val unlock : mutex -> unit
  val wait : cond -> mutex -> unit
  val broadcast : cond -> unit
  val self : unit -> int
end

type mode = Shared | Update | Exclusive

type stats = {
  shared_acquisitions : int;
  update_acquisitions : int;
  exclusive_acquisitions : int;
  upgrades : int;
}

type waiting = {
  waiting_shared : int;
  waiting_update : int;
  waiting_exclusive : int;
}

type inspection = {
  i_readers : int;
  i_update : bool;
  i_exclusive : bool;
  i_upgrade_pending : bool;
  i_hold_sum : int;
  i_waiting : waiting;
}

module type S = sig
  type t

  val create : ?legacy_recursive_block:bool -> unit -> t
  val acquire : t -> mode -> unit
  val release : t -> mode -> unit
  val upgrade : t -> unit
  val downgrade : t -> unit
  val readers : t -> int
  val shared_hold_count : t -> int
  val update_held : t -> bool
  val exclusive_held : t -> bool
  val upgrade_pending : t -> bool
  val waiters : t -> mode -> int
  val waiting : t -> waiting
  val stats : t -> stats
  val inspect : t -> inspection
end

module Make (Sync : SYNC) = struct
  type t = {
    mutex : Sync.mutex;
    changed : Sync.cond;
    (* Pre-fix semantics for the schedcheck regression: a nested Shared
       acquisition parks behind a pending upgrade instead of passing. *)
    legacy : bool;
    (* Reader ownership: thread id -> number of Shared holds.  The sum
       of all counts always equals [n_readers]; entries are removed at
       zero so dead threads do not accumulate. *)
    readers_by : (int, int) Hashtbl.t;
    mutable n_readers : int;
    mutable upd : bool;
    mutable excl : bool;
    mutable upgrade_pending : bool;
    mutable s_shared : int;
    mutable s_update : int;
    mutable s_exclusive : int;
    mutable s_upgrades : int;
    (* threads currently blocked inside acquire, per requested mode *)
    mutable w_shared : int;
    mutable w_update : int;
    mutable w_exclusive : int;
  }

  let create ?(legacy_recursive_block = false) () =
    {
      mutex = Sync.make_mutex ();
      changed = Sync.make_cond ();
      legacy = legacy_recursive_block;
      readers_by = Hashtbl.create 8;
      n_readers = 0;
      upd = false;
      excl = false;
      upgrade_pending = false;
      s_shared = 0;
      s_update = 0;
      s_exclusive = 0;
      s_upgrades = 0;
      w_shared = 0;
      w_update = 0;
      w_exclusive = 0;
    }

  let locked t f =
    Sync.lock t.mutex;
    Fun.protect ~finally:(fun () -> Sync.unlock t.mutex) f

  let add_hold t tid =
    match Hashtbl.find_opt t.readers_by tid with
    | Some n -> Hashtbl.replace t.readers_by tid (n + 1)
    | None -> Hashtbl.add t.readers_by tid 1

  (* false: the thread has no registered Shared hold *)
  let drop_hold t tid =
    match Hashtbl.find_opt t.readers_by tid with
    | Some 1 ->
      Hashtbl.remove t.readers_by tid;
      true
    | Some n ->
      Hashtbl.replace t.readers_by tid (n - 1);
      true
    | None -> false

  let acquire t mode =
    let tid = Sync.self () in
    locked t (fun () ->
        match mode with
        | Shared ->
          (* A thread that already holds Shared re-enters without
             parking: it cannot wait behind [excl] (a reader in the
             registry excludes an exclusive holder) and it must not
             wait behind [upgrade_pending] — the upgrader is draining
             readers, so parking this one deadlocks both.  First-time
             readers still queue behind a pending upgrade, which is
             what keeps the upgrader from being starved. *)
          let nested = (not t.legacy) && Hashtbl.mem t.readers_by tid in
          if not nested then begin
            t.w_shared <- t.w_shared + 1;
            (try
               while t.excl || t.upgrade_pending do
                 Sync.wait t.changed t.mutex
               done;
               t.w_shared <- t.w_shared - 1
             with e ->
               t.w_shared <- t.w_shared - 1;
               raise e)
          end;
          t.n_readers <- t.n_readers + 1;
          add_hold t tid;
          t.s_shared <- t.s_shared + 1
        | Update ->
          t.w_update <- t.w_update + 1;
          (try
             while t.upd || t.excl do
               Sync.wait t.changed t.mutex
             done;
             t.w_update <- t.w_update - 1
           with e ->
             t.w_update <- t.w_update - 1;
             raise e);
          t.upd <- true;
          t.s_update <- t.s_update + 1
        | Exclusive ->
          (* Serialize against other writers first, then drain readers,
             exactly as an update that upgrades immediately.  An
             exception mid-protocol (an async interrupt during a wait)
             must unwind whatever flags this thread had already raised,
             or the lock is wedged for everyone. *)
          t.w_exclusive <- t.w_exclusive + 1;
          (try
             while t.upd || t.excl do
               Sync.wait t.changed t.mutex
             done
           with e ->
             t.w_exclusive <- t.w_exclusive - 1;
             raise e);
          t.upd <- true;
          t.upgrade_pending <- true;
          (try
             while t.n_readers > 0 do
               Sync.wait t.changed t.mutex
             done
           with e ->
             t.upd <- false;
             t.upgrade_pending <- false;
             t.w_exclusive <- t.w_exclusive - 1;
             Sync.broadcast t.changed;
             raise e);
          t.w_exclusive <- t.w_exclusive - 1;
          t.upd <- false;
          t.upgrade_pending <- false;
          t.excl <- true;
          t.s_exclusive <- t.s_exclusive + 1)

  let release t mode =
    let tid = Sync.self () in
    locked t (fun () ->
        (match mode with
        | Shared ->
          if t.n_readers <= 0 then invalid_arg "Vlock.release: no shared holder";
          if not (drop_hold t tid) then
            invalid_arg "Vlock.release: calling thread holds no shared lock";
          t.n_readers <- t.n_readers - 1
        | Update ->
          if not t.upd then invalid_arg "Vlock.release: update not held";
          t.upd <- false
        | Exclusive ->
          if not t.excl then invalid_arg "Vlock.release: exclusive not held";
          t.excl <- false);
        Sync.broadcast t.changed)

  let upgrade t =
    locked t (fun () ->
        if not t.upd then invalid_arg "Vlock.upgrade: update not held";
        if t.upgrade_pending then
          invalid_arg "Vlock.upgrade: upgrade already pending";
        t.upgrade_pending <- true;
        (try
           while t.n_readers > 0 do
             Sync.wait t.changed t.mutex
           done
         with e ->
           (* Still holding Update; new readers were gated for nothing,
              so wake them as we withdraw the pending upgrade. *)
           t.upgrade_pending <- false;
           Sync.broadcast t.changed;
           raise e);
        t.upd <- false;
        t.upgrade_pending <- false;
        t.excl <- true;
        t.s_upgrades <- t.s_upgrades + 1)

  let downgrade t =
    locked t (fun () ->
        if not t.excl then invalid_arg "Vlock.downgrade: exclusive not held";
        t.excl <- false;
        t.upd <- true;
        Sync.broadcast t.changed)

  let readers t = locked t (fun () -> t.n_readers)

  let shared_hold_count t =
    let tid = Sync.self () in
    locked t (fun () ->
        match Hashtbl.find_opt t.readers_by tid with Some n -> n | None -> 0)

  let update_held t = locked t (fun () -> t.upd)
  let exclusive_held t = locked t (fun () -> t.excl)
  let upgrade_pending t = locked t (fun () -> t.upgrade_pending)

  let waiters t mode =
    locked t (fun () ->
        match mode with
        | Shared -> t.w_shared
        | Update -> t.w_update
        | Exclusive -> t.w_exclusive)

  let waiting t =
    locked t (fun () ->
        {
          waiting_shared = t.w_shared;
          waiting_update = t.w_update;
          waiting_exclusive = t.w_exclusive;
        })

  let stats t =
    locked t (fun () ->
        {
          shared_acquisitions = t.s_shared;
          update_acquisitions = t.s_update;
          exclusive_acquisitions = t.s_exclusive;
          upgrades = t.s_upgrades;
        })

  let inspect t =
    {
      i_readers = t.n_readers;
      i_update = t.upd;
      i_exclusive = t.excl;
      i_upgrade_pending = t.upgrade_pending;
      i_hold_sum = Hashtbl.fold (fun _ n acc -> acc + n) t.readers_by 0;
      i_waiting =
        {
          waiting_shared = t.w_shared;
          waiting_update = t.w_update;
          waiting_exclusive = t.w_exclusive;
        };
    }
end

module Thread_sync = struct
  type mutex = Mutex.t
  type cond = Condition.t

  let make_mutex () = Mutex.create ()
  let make_cond () = Condition.create ()
  let lock = Mutex.lock
  let unlock = Mutex.unlock
  let wait = Condition.wait
  let broadcast = Condition.broadcast
  let self () = Thread.id (Thread.self ())
end
