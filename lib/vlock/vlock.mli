(** The paper's three-mode lock (§3).

    Compatibility matrix:

    {v
                shared    update    exclusive
    shared      ok        ok        conflict
    update      ok        conflict  conflict
    exclusive   conflict  conflict  conflict
    v}

    An enquiry runs under a [shared] lock.  An update first takes the
    [update] lock (excluding other updates but {e not} enquiries),
    verifies its preconditions and commits its log entry to disk, then
    {!upgrade}s to [exclusive] only for the virtual-memory mutation.
    "These rules never exclude enquiry operations during disk
    transfers, only during virtual memory operations."

    A pending upgrade blocks {e first-time} shared acquisitions, so the
    upgrading updater cannot be starved by a stream of new readers.  A
    thread that already holds [Shared] may acquire [Shared] again and
    passes that gate: the lock keeps a per-thread reader-ownership
    registry, and a registered reader re-entering while an upgrade
    drains would otherwise deadlock both threads (the recursive-read
    hazard, closed here and verified exhaustively by
    [lib/schedcheck]).

    Ownership rules: [Shared] acquire/release must be paired {e on the
    holding thread} (the registry tracks per-thread hold counts).  The
    writer modes remain unowned — callers pair [acquire] and [release]
    correctly, possibly across threads — and
    {!upgrade}/{!downgrade} may only be called while holding the
    corresponding mode (use the [with_*] wrappers where possible).

    The protocol itself lives in {!Vlock_core}, functored over its
    synchronization primitives; this module instantiates it on real
    threads and layers on {!Sdb_check} reporting and metrics. *)

type t

type mode = Vlock_core.mode = Shared | Update | Exclusive

(** [create ?name ()] — [name] (default ["vlock"]) labels this
    instance's class in the {!Sdb_check} lock-order graph and in
    violation reports, as ["vlock:<name>"].  Give each database its
    application name so a report reads ["vlock:ns"], not ["vlock"]. *)
val create : ?name:string -> unit -> t
val acquire : t -> mode -> unit
val release : t -> mode -> unit

val upgrade : t -> unit
(** Convert a held [Update] lock to [Exclusive]; blocks until current
    readers drain while keeping new first-time readers out (registered
    readers may still re-enter — see the module description). *)

val downgrade : t -> unit
(** Convert a held [Exclusive] lock back to [Update]. *)

val with_lock : t -> mode -> (unit -> 'a) -> 'a
(** Acquire, run, release (also on exception). *)

(** Observability for tests, the E9 experiment, and the metrics layer.

    Every acquisition also feeds the process-wide {!Sdb_obs.Metrics}
    registry: [sdb_lock_acquisitions_total{mode}] and
    [sdb_lock_wait_seconds{mode}] for all three modes,
    [sdb_lock_hold_seconds{mode}] for the writer modes, and
    [sdb_lock_upgrades_total].  With the registry disabled the lock
    takes no timestamps; hold stamps are zeroed at release, so toggling
    the registry mid-hold records nothing rather than a duration
    measured from a previous hold. *)

val sanitizer : t -> Sdb_check.lock
(** The lock's handle in the {!Sdb_check} registry.  Engine code passes
    it to [Sdb_check.assert_mode] to declare the mode a touch point
    requires; every [acquire]/[release]/[upgrade]/[downgrade] already
    reports, so the assertion sees the true held mode.  {!create} also
    registers a re-entry probe with the sanitizer, so a nested Shared
    acquisition is cross-checked against the reader registry instead of
    being exempted. *)

val readers : t -> int

val shared_hold_count : t -> int
(** The calling thread's Shared hold count on this lock (0 if it holds
    none) — the reader-ownership registry entry that lets it re-enter
    past a pending upgrade. *)

val update_held : t -> bool
val exclusive_held : t -> bool

val upgrade_pending : t -> bool
(** An upgrader (or an [Exclusive] acquirer in its drain phase) has
    gated new readers and is waiting for current ones to leave. *)

val waiters : t -> mode -> int
(** Number of threads currently blocked inside {!acquire} for the given
    mode.  An upgrading exclusive acquirer counts as an [Exclusive]
    waiter until it holds the lock.  (Threads blocked in {!upgrade}
    itself are not counted: they already hold [Update].  A nested
    Shared re-entry never blocks, so it never counts.) *)

type waiting = Vlock_core.waiting = {
  waiting_shared : int;
  waiting_update : int;
  waiting_exclusive : int;
}

val waiting : t -> waiting
(** All three {!waiters} counts read under a single mutex hold — a
    consistent snapshot of who is parked on the lock right now.  The
    group-commit leader polls this to decide whether lingering will
    grow its group: a non-zero [waiting_update] means another updater
    is queued and will join the forming group as soon as it runs. *)

type stats = Vlock_core.stats = {
  shared_acquisitions : int;
  update_acquisitions : int;
  exclusive_acquisitions : int;
  upgrades : int;
}

val stats : t -> stats
