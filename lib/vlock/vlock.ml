module Metrics = Sdb_obs.Metrics

type mode = Shared | Update | Exclusive

type stats = {
  shared_acquisitions : int;
  update_acquisitions : int;
  exclusive_acquisitions : int;
  upgrades : int;
}

type t = {
  san : Sdb_check.lock;
  mutex : Mutex.t;
  changed : Condition.t;
  mutable n_readers : int;
  mutable upd : bool;
  mutable excl : bool;
  mutable upgrade_pending : bool;
  mutable s_shared : int;
  mutable s_update : int;
  mutable s_exclusive : int;
  mutable s_upgrades : int;
  (* threads currently blocked inside acquire, per requested mode *)
  mutable w_shared : int;
  mutable w_update : int;
  mutable w_exclusive : int;
  (* acquisition timestamps for hold-time metrics (writer modes only:
     shared holders are concurrent, a single timestamp has no owner) *)
  mutable upd_since : float;
  mutable excl_since : float;
}

let mode_label = function
  | Shared -> "shared"
  | Update -> "update"
  | Exclusive -> "exclusive"

let m_acquisitions mode =
  Metrics.counter "sdb_lock_acquisitions_total"
    ~help:"Lock acquisitions by mode."
    ~labels:[ ("mode", mode_label mode) ]

let m_wait mode =
  Metrics.histogram "sdb_lock_wait_seconds"
    ~help:"Time from requesting the lock to holding it, by mode."
    ~labels:[ ("mode", mode_label mode) ]

let m_hold mode =
  Metrics.histogram "sdb_lock_hold_seconds"
    ~help:"Time the lock was held, by mode (writer modes only)."
    ~labels:[ ("mode", mode_label mode) ]

let acq_shared = m_acquisitions Shared
let acq_update = m_acquisitions Update
let acq_exclusive = m_acquisitions Exclusive
let wait_shared = m_wait Shared
let wait_update = m_wait Update
let wait_exclusive = m_wait Exclusive
let hold_update = m_hold Update
let hold_exclusive = m_hold Exclusive

let m_upgrades =
  Metrics.counter "sdb_lock_upgrades_total"
    ~help:"Update-to-exclusive lock upgrades."

let san_mode = function
  | Shared -> Sdb_check.Shared
  | Update -> Sdb_check.Update
  | Exclusive -> Sdb_check.Exclusive

let create ?(name = "vlock") () =
  {
    san = Sdb_check.make_lock ~kind:`Vlock ("vlock:" ^ name);
    mutex = Mutex.create ();
    changed = Condition.create ();
    n_readers = 0;
    upd = false;
    excl = false;
    upgrade_pending = false;
    s_shared = 0;
    s_update = 0;
    s_exclusive = 0;
    s_upgrades = 0;
    w_shared = 0;
    w_update = 0;
    w_exclusive = 0;
    upd_since = 0.0;
    excl_since = 0.0;
  }

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let acquire t mode =
  (* Report to the sanitizer before blocking: its lock-order cycle
     check then fires before the deadlock it predicts can bite. *)
  Sdb_check.note_acquire t.san (san_mode mode);
  (* The timestamps exist only to feed the wait/hold histograms; skip
     the gettimeofday calls entirely when the registry is off. *)
  let timed = Metrics.is_enabled () in
  let t0 = if timed then Unix.gettimeofday () else 0.0 in
  locked t (fun () ->
      match mode with
      | Shared ->
        t.w_shared <- t.w_shared + 1;
        while t.excl || t.upgrade_pending do
          Condition.wait t.changed t.mutex
        done;
        t.w_shared <- t.w_shared - 1;
        t.n_readers <- t.n_readers + 1;
        t.s_shared <- t.s_shared + 1
      | Update ->
        t.w_update <- t.w_update + 1;
        while t.upd || t.excl do
          Condition.wait t.changed t.mutex
        done;
        t.w_update <- t.w_update - 1;
        t.upd <- true;
        t.s_update <- t.s_update + 1
      | Exclusive ->
        (* Serialize against other writers first, then drain readers,
           exactly as an update that upgrades immediately. *)
        t.w_exclusive <- t.w_exclusive + 1;
        while t.upd || t.excl do
          Condition.wait t.changed t.mutex
        done;
        t.upd <- true;
        t.upgrade_pending <- true;
        while t.n_readers > 0 do
          Condition.wait t.changed t.mutex
        done;
        t.w_exclusive <- t.w_exclusive - 1;
        t.upd <- false;
        t.upgrade_pending <- false;
        t.excl <- true;
        t.s_exclusive <- t.s_exclusive + 1);
  if timed then begin
    let now = Unix.gettimeofday () in
    (match mode with
    | Shared ->
      Metrics.incr acq_shared;
      Metrics.observe wait_shared (now -. t0)
    | Update ->
      Metrics.incr acq_update;
      Metrics.observe wait_update (now -. t0);
      t.upd_since <- now
    | Exclusive ->
      Metrics.incr acq_exclusive;
      Metrics.observe wait_exclusive (now -. t0);
      t.excl_since <- now)
  end

let release t mode =
  let timed = Metrics.is_enabled () in
  let now = if timed then Unix.gettimeofday () else 0.0 in
  locked t (fun () ->
      (match mode with
      | Shared ->
        if t.n_readers <= 0 then invalid_arg "Vlock.release: no shared holder";
        t.n_readers <- t.n_readers - 1
      | Update ->
        if not t.upd then invalid_arg "Vlock.release: update not held";
        t.upd <- false;
        if timed && t.upd_since > 0.0 then
          Metrics.observe hold_update (now -. t.upd_since)
      | Exclusive ->
        if not t.excl then invalid_arg "Vlock.release: exclusive not held";
        t.excl <- false;
        if timed && t.excl_since > 0.0 then
          Metrics.observe hold_exclusive (now -. t.excl_since));
      Condition.broadcast t.changed);
  Sdb_check.note_release t.san (san_mode mode)

let upgrade t =
  let timed = Metrics.is_enabled () in
  locked t (fun () ->
      if not t.upd then invalid_arg "Vlock.upgrade: update not held";
      if t.upgrade_pending then invalid_arg "Vlock.upgrade: upgrade already pending";
      t.upgrade_pending <- true;
      while t.n_readers > 0 do
        Condition.wait t.changed t.mutex
      done;
      t.upd <- false;
      t.upgrade_pending <- false;
      t.excl <- true;
      t.s_upgrades <- t.s_upgrades + 1;
      if timed then begin
        let now = Unix.gettimeofday () in
        if t.upd_since > 0.0 then Metrics.observe hold_update (now -. t.upd_since);
        t.excl_since <- now
      end);
  Sdb_check.note_upgrade t.san;
  Metrics.incr m_upgrades

let downgrade t =
  let timed = Metrics.is_enabled () in
  locked t (fun () ->
      if not t.excl then invalid_arg "Vlock.downgrade: exclusive not held";
      t.excl <- false;
      t.upd <- true;
      if timed then begin
        let now = Unix.gettimeofday () in
        if t.excl_since > 0.0 then Metrics.observe hold_exclusive (now -. t.excl_since);
        t.upd_since <- now
      end;
      Condition.broadcast t.changed);
  Sdb_check.note_downgrade t.san

let with_lock t mode f =
  acquire t mode;
  Fun.protect ~finally:(fun () -> release t mode) f

let sanitizer t = t.san
let readers t = locked t (fun () -> t.n_readers)
let update_held t = locked t (fun () -> t.upd)
let exclusive_held t = locked t (fun () -> t.excl)

let waiters t mode =
  locked t (fun () ->
      match mode with
      | Shared -> t.w_shared
      | Update -> t.w_update
      | Exclusive -> t.w_exclusive)

type waiting = {
  waiting_shared : int;
  waiting_update : int;
  waiting_exclusive : int;
}

let waiting t =
  locked t (fun () ->
      {
        waiting_shared = t.w_shared;
        waiting_update = t.w_update;
        waiting_exclusive = t.w_exclusive;
      })

let stats t =
  locked t (fun () ->
      {
        shared_acquisitions = t.s_shared;
        update_acquisitions = t.s_update;
        exclusive_acquisitions = t.s_exclusive;
        upgrades = t.s_upgrades;
      })
