module Metrics = Sdb_obs.Metrics

(* The protocol itself lives in Vlock_core (functored over its sync
   primitives so lib/schedcheck can model check the same algorithm);
   this module is the engine-facing instantiation on real threads, plus
   the two concerns the core deliberately omits: sanitizer reporting
   and wait/hold metrics. *)
module Core = Vlock_core.Make (Vlock_core.Thread_sync)

type mode = Vlock_core.mode = Shared | Update | Exclusive

type stats = Vlock_core.stats = {
  shared_acquisitions : int;
  update_acquisitions : int;
  exclusive_acquisitions : int;
  upgrades : int;
}

type waiting = Vlock_core.waiting = {
  waiting_shared : int;
  waiting_update : int;
  waiting_exclusive : int;
}

type t = {
  san : Sdb_check.lock;
  core : Core.t;
  (* acquisition timestamps for hold-time metrics (writer modes only:
     shared holders are concurrent, a single timestamp has no owner).
     Written by the holder at acquire, read and zeroed at release; the
     lock's own happens-before edge orders the accesses.  0.0 means "no
     stamp": a hold that began while the registry was disabled must
     observe nothing at release, whatever the registry says then. *)
  mutable upd_since : float;
  mutable excl_since : float;
}

let mode_label = function
  | Shared -> "shared"
  | Update -> "update"
  | Exclusive -> "exclusive"

let m_acquisitions mode =
  Metrics.counter "sdb_lock_acquisitions_total"
    ~help:"Lock acquisitions by mode."
    ~labels:[ ("mode", mode_label mode) ]

let m_wait mode =
  Metrics.histogram "sdb_lock_wait_seconds"
    ~help:"Time from requesting the lock to holding it, by mode."
    ~labels:[ ("mode", mode_label mode) ]

let m_hold mode =
  Metrics.histogram "sdb_lock_hold_seconds"
    ~help:"Time the lock was held, by mode (writer modes only)."
    ~labels:[ ("mode", mode_label mode) ]

let acq_shared = m_acquisitions Shared
let acq_update = m_acquisitions Update
let acq_exclusive = m_acquisitions Exclusive
let wait_shared = m_wait Shared
let wait_update = m_wait Update
let wait_exclusive = m_wait Exclusive
let hold_update = m_hold Update
let hold_exclusive = m_hold Exclusive

let m_upgrades =
  Metrics.counter "sdb_lock_upgrades_total"
    ~help:"Update-to-exclusive lock upgrades."

let san_mode = function
  | Shared -> Sdb_check.Shared
  | Update -> Sdb_check.Update
  | Exclusive -> Sdb_check.Exclusive

let create ?(name = "vlock") () =
  let san = Sdb_check.make_lock ~kind:`Vlock ("vlock:" ^ name) in
  let core = Core.create () in
  (* Let the sanitizer cross-check a claimed recursive read against the
     lock's own reader registry: nested Shared is verified ownership,
     not a blanket exemption. *)
  Sdb_check.set_reentry_probe san (fun () -> Core.shared_hold_count core > 0);
  { san; core; upd_since = 0.0; excl_since = 0.0 }

(* Wall clocks step backward; a negative duration would corrupt the
   percentile interpolation, so clamp every observation at zero. *)
let dur a b = Float.max 0.0 (b -. a)

let acquire t mode =
  (* Report to the sanitizer before blocking: its lock-order cycle
     check then fires before the deadlock it predicts can bite. *)
  Sdb_check.note_acquire t.san (san_mode mode);
  (* The timestamps exist only to feed the wait/hold histograms; skip
     the gettimeofday calls entirely when the registry is off. *)
  let timed = Metrics.is_enabled () in
  let t0 = if timed then Unix.gettimeofday () else 0.0 in
  (match Core.acquire t.core mode with
  | () -> ()
  | exception e ->
    (* The core unwound its waiter accounting; retract the optimistic
       note so the sanitizer does not believe we hold the lock. *)
    Sdb_check.note_release t.san (san_mode mode);
    raise e);
  if timed then begin
    let now = Unix.gettimeofday () in
    match mode with
    | Shared ->
      Metrics.incr acq_shared;
      Metrics.observe wait_shared (dur t0 now)
    | Update ->
      Metrics.incr acq_update;
      Metrics.observe wait_update (dur t0 now);
      t.upd_since <- now
    | Exclusive ->
      Metrics.incr acq_exclusive;
      Metrics.observe wait_exclusive (dur t0 now);
      t.excl_since <- now
  end

let release t mode =
  let timed = Metrics.is_enabled () in
  let now = if timed then Unix.gettimeofday () else 0.0 in
  Core.release t.core mode;
  (* Zero the stamp even when the registry is off at release: a stale
     stamp surviving here would be charged to the next hold if the
     registry is toggled mid-stream. *)
  (match mode with
  | Shared -> ()
  | Update ->
    if timed && t.upd_since > 0.0 then
      Metrics.observe hold_update (dur t.upd_since now);
    t.upd_since <- 0.0
  | Exclusive ->
    if timed && t.excl_since > 0.0 then
      Metrics.observe hold_exclusive (dur t.excl_since now);
    t.excl_since <- 0.0);
  Sdb_check.note_release t.san (san_mode mode)

let upgrade t =
  let timed = Metrics.is_enabled () in
  Core.upgrade t.core;
  let now = if timed then Unix.gettimeofday () else 0.0 in
  if timed && t.upd_since > 0.0 then
    Metrics.observe hold_update (dur t.upd_since now);
  t.upd_since <- 0.0;
  t.excl_since <- (if timed then now else 0.0);
  Sdb_check.note_upgrade t.san;
  Metrics.incr m_upgrades

let downgrade t =
  let timed = Metrics.is_enabled () in
  Core.downgrade t.core;
  let now = if timed then Unix.gettimeofday () else 0.0 in
  if timed && t.excl_since > 0.0 then
    Metrics.observe hold_exclusive (dur t.excl_since now);
  t.excl_since <- 0.0;
  t.upd_since <- (if timed then now else 0.0);
  Sdb_check.note_downgrade t.san

let with_lock t mode f =
  acquire t mode;
  Fun.protect ~finally:(fun () -> release t mode) f

let sanitizer t = t.san
(* Observability accessors: snapshot reads off the sanitizer path,
   safe to call from probes and the lockdep linger loop. *)
let readers t = Core.readers t.core [@@sdb.noblock]
let shared_hold_count t = Core.shared_hold_count t.core [@@sdb.noblock]
let update_held t = Core.update_held t.core [@@sdb.noblock]
let exclusive_held t = Core.exclusive_held t.core [@@sdb.noblock]
let upgrade_pending t = Core.upgrade_pending t.core [@@sdb.noblock]

let waiters t mode = Core.waiters t.core mode [@@sdb.noblock]
let waiting t = Core.waiting t.core [@@sdb.noblock]
let stats t = Core.stats t.core [@@sdb.noblock]
