/* CLOCK_MONOTONIC for deadline arithmetic.

   Every deadline in the tree (RPC recv timeouts, replica flush,
   heartbeat thresholds, backoff pacing) must survive a wall-clock step:
   an NTP adjustment through Unix.gettimeofday would expire or extend
   them arbitrarily.  clock_gettime(CLOCK_MONOTONIC) is immune; it
   exists on every platform the suite targets (Linux, macOS >= 10.12,
   the BSDs). */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value sdb_mono_now_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) != 0) {
    /* Effectively unreachable on supported platforms; a zero reading
       is still monotone from the caller's point of view because the
       OCaml side clamps regressions. */
    return caml_copy_int64(0);
  }
  return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec);
}
