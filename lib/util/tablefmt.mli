(** Aligned plain-text tables for benchmark and report output. *)

type align = Left | Right

val render : ?align:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays the table out with column widths fitted
    to content, a rule under the header, and two spaces between
    columns.  [align] gives per-column alignment (default: first column
    left, the rest right, matching numeric tables). *)

val fmt_ms : float -> string
(** Milliseconds with adaptive precision, e.g. ["0.042 ms"], ["54.0 ms"],
    ["1.20 s"]. *)

val fmt_bytes : int -> string
(** Human bytes, e.g. ["1.0 MiB"]. *)

val fmt_ratio : float -> string
(** e.g. ["2.1x"]. *)
