type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s

let render ?align ~header rows =
  let ncols = List.length header in
  let aligns =
    match align with
    | Some a when List.length a = ncols -> Array.of_list a
    | Some _ -> invalid_arg "Tablefmt.render: align length mismatch"
    | None -> Array.init ncols (fun i -> if i = 0 then Left else Right)
  in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri
      (fun i cell ->
        if i < ncols then widths.(i) <- max widths.(i) (String.length cell))
      row
  in
  measure header;
  List.iter measure rows;
  let rstrip s =
    let n = ref (String.length s) in
    while !n > 0 && s.[!n - 1] = ' ' do
      decr n
    done;
    String.sub s 0 !n
  in
  let buf = Buffer.create 256 in
  let emit_row row =
    Buffer.clear buf;
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        if i < ncols then Buffer.add_string buf (pad aligns.(i) widths.(i) cell)
        else Buffer.add_string buf cell)
      row;
    rstrip (Buffer.contents buf) ^ "\n"
  in
  let out = Buffer.create 1024 in
  Buffer.add_string out (emit_row header);
  Array.iteri
    (fun i w ->
      if i > 0 then Buffer.add_string out "  ";
      Buffer.add_string out (String.make w '-'))
    widths;
  Buffer.add_char out '\n';
  List.iter (fun row -> Buffer.add_string out (emit_row row)) rows;
  Buffer.contents out

let fmt_ms ms =
  if ms >= 1000.0 then Printf.sprintf "%.2f s" (ms /. 1000.0)
  else if ms >= 100.0 then Printf.sprintf "%.0f ms" ms
  else if ms >= 1.0 then Printf.sprintf "%.1f ms" ms
  else if ms >= 0.001 then Printf.sprintf "%.3f ms" ms
  else Printf.sprintf "%.1f us" (ms *. 1000.0)

let fmt_bytes n =
  let f = float_of_int n in
  if n >= 1 lsl 30 then Printf.sprintf "%.1f GiB" (f /. float_of_int (1 lsl 30))
  else if n >= 1 lsl 20 then Printf.sprintf "%.1f MiB" (f /. float_of_int (1 lsl 20))
  else if n >= 1 lsl 10 then Printf.sprintf "%.1f KiB" (f /. float_of_int (1 lsl 10))
  else Printf.sprintf "%d B" n

let fmt_ratio r = Printf.sprintf "%.1fx" r
