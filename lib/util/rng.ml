type t = {
  mutable state : int64;
  (* Per-generator memo of the last Zipf parameters (see [zipf]): a
     generator is owned by one thread, so unlike a global cache this
     needs no lock, and a workload draws from one (n, theta). *)
  mutable zipf_memo : (int * float * (float * float * float)) option;
}

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = mix (Int64.of_int seed); zipf_memo = None }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = next_int64 t; zipf_memo = None }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling over the low 62 bits avoids modulo bias. *)
  let mask = max_int in
  let rec go () =
    let v = Int64.to_int (next_int64 t) land mask in
    let r = v mod bound in
    if v - r > mask - bound + 1 then go () else r
  in
  go ()

let float t bound =
  let v = Int64.to_int (next_int64 t) land max_int in
  bound *. (float_of_int v /. float_of_int max_int)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let string t ~len =
  String.init len (fun _ -> Char.chr (33 + int t 94))

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

(* Zipf via the classic Gray et al. rejection-free approximation: compute
   the generalized harmonic number once per (n, theta) and invert the CDF
   with the two-point shortcut.  Memoized per generator because benches
   draw millions. *)
let zipf t ~n ~theta =
  if n <= 0 then invalid_arg "Rng.zipf: n must be positive";
  if theta < 0.0 || theta >= 1.0 then invalid_arg "Rng.zipf: theta in [0,1)";
  if theta = 0.0 then int t n
  else begin
    let zetan, eta, alpha =
      match t.zipf_memo with
      | Some (n', theta', v) when n' = n && theta' = theta -> v
      | _ ->
        let zeta m =
          let acc = ref 0.0 in
          for i = 1 to m do
            acc := !acc +. (1.0 /. Float.pow (float_of_int i) theta)
          done;
          !acc
        in
        let zetan = zeta n in
        let zeta2 = zeta 2 in
        let alpha = 1.0 /. (1.0 -. theta) in
        let eta =
          (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
          /. (1.0 -. (zeta2 /. zetan))
        in
        t.zipf_memo <- Some (n, theta, (zetan, eta, alpha));
        (zetan, eta, alpha)
    in
    let u = float t 1.0 in
    let uz = u *. zetan in
    if uz < 1.0 then 0
    else if uz < 1.0 +. Float.pow 0.5 theta then 1
    else
      let r =
        int_of_float (float_of_int n *. Float.pow ((eta *. u) -. eta +. 1.0) alpha)
      in
      if r >= n then n - 1 else if r < 0 then 0 else r
  end
