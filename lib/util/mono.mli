(** Monotonic time for deadlines.

    [Unix.gettimeofday] is wall time: an NTP step moves it, and with it
    every deadline computed as [now +. timeout] — a backward step makes
    a timeout never expire, a forward step expires it immediately.  All
    deadline and interval arithmetic in the tree (RPC recv deadlines,
    replica flush, heartbeat thresholds, retry backoff) goes through
    this module instead.

    The epoch is arbitrary (typically boot time): readings are only
    meaningful as differences.  Never mix them with wall-clock
    timestamps. *)

val now_ns : unit -> int64
(** Raw CLOCK_MONOTONIC reading in nanoseconds. *)

val now_s : unit -> float
(** Monotonic seconds.  Guaranteed non-decreasing within the process
    even if the underlying clock source misbehaves. *)

val elapsed_s : since:float -> float
(** [now_s () -. since], clamped to be non-negative. *)
