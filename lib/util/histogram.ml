type t = {
  mutable samples : float array;
  mutable len : int;
  mutable sorted : float array option;
}

let create () = { samples = Array.make 64 0.0; len = 0; sorted = None }

let record t v =
  if t.len = Array.length t.samples then begin
    let bigger = Array.make (2 * t.len) 0.0 in
    Array.blit t.samples 0 bigger 0 t.len;
    t.samples <- bigger
  end;
  t.samples.(t.len) <- v;
  t.len <- t.len + 1;
  t.sorted <- None

let count t = t.len

let nonempty t name = if t.len = 0 then invalid_arg ("Histogram." ^ name ^ ": empty")

let total t =
  let acc = ref 0.0 in
  for i = 0 to t.len - 1 do
    acc := !acc +. t.samples.(i)
  done;
  !acc

let mean t =
  nonempty t "mean";
  total t /. float_of_int t.len

let sorted t =
  match t.sorted with
  | Some s -> s
  | None ->
    let s = Array.sub t.samples 0 t.len in
    Array.sort compare s;
    t.sorted <- Some s;
    s

let min t =
  nonempty t "min";
  (sorted t).(0)

let max t =
  nonempty t "max";
  (sorted t).(t.len - 1)

(* Linear interpolation between closest order statistics: rank
   p/100·(len−1) is split into an integer part (a sample index) and a
   fraction interpolated toward the next sample.  When the rank lands
   exactly on a sample ("bucket edge"), that sample is returned
   verbatim — percentile 0 is the min, 100 the max, and with N samples
   every multiple of 100/(N−1) is exact. *)
let percentile t p =
  nonempty t "percentile";
  if p < 0.0 || p > 100.0 then invalid_arg "Histogram.percentile: out of range";
  let s = sorted t in
  if t.len = 1 then s.(0)
  else begin
    let h = p /. 100.0 *. float_of_int (t.len - 1) in
    let lo = int_of_float (Float.floor h) in
    let hi = int_of_float (Float.ceil h) in
    if lo = hi then s.(lo)
    else s.(lo) +. ((h -. float_of_int lo) *. (s.(hi) -. s.(lo)))
  end

let percentile_opt t p = if t.len = 0 then None else Some (percentile t p)

type snapshot = {
  s_count : int;
  s_total : float;
  s_mean : float;
  s_min : float;
  s_max : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
  s_p999 : float;
}

let empty_snapshot =
  {
    s_count = 0;
    s_total = 0.0;
    s_mean = 0.0;
    s_min = 0.0;
    s_max = 0.0;
    s_p50 = 0.0;
    s_p90 = 0.0;
    s_p99 = 0.0;
    s_p999 = 0.0;
  }

let snapshot t =
  if t.len = 0 then empty_snapshot
  else
    {
      s_count = t.len;
      s_total = total t;
      s_mean = mean t;
      s_min = min t;
      s_max = max t;
      s_p50 = percentile t 50.0;
      s_p90 = percentile t 90.0;
      s_p99 = percentile t 99.0;
      s_p999 = percentile t 99.9;
    }

let clear t =
  t.len <- 0;
  t.sorted <- None

(* Capture the source's array and length up front so merging a
   histogram into itself (or a concurrent [record] into [dst]) cannot
   read through a reallocation mid-loop. *)
let merge_into dst src =
  let src_samples = src.samples and n = src.len in
  for i = 0 to n - 1 do
    record dst src_samples.(i)
  done

let merge a b =
  let t = create () in
  merge_into t a;
  merge_into t b;
  t
