(** Latency histogram with percentile queries.

    Samples are recorded exactly (growable array) because benchmark runs
    are bounded; percentile queries sort on demand and cache the sorted
    view until the next record. *)

type t

val create : unit -> t
val record : t -> float -> unit
val count : t -> int
val mean : t -> float
val min : t -> float
val max : t -> float
val percentile : t -> float -> float
(** [percentile t 99.0] is the p99 by linear interpolation between the
    closest order statistics.  Exact at sample boundaries: percentile 0
    is the minimum, 100 the maximum, and with N samples every multiple
    of 100/(N−1) returns a recorded sample verbatim.  Raises
    [Invalid_argument] if empty or [p] outside [\[0,100\]]. *)

val percentile_opt : t -> float -> float option
(** Like {!percentile} but [None] on an empty histogram (still raises on
    [p] outside [\[0,100\]]). *)

type snapshot = {
  s_count : int;
  s_total : float;
  s_mean : float;
  s_min : float;
  s_max : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
  s_p999 : float;
}
(** One consistent read of the usual summary statistics.  All fields of
    an empty histogram's snapshot are zero ([s_count = 0]), so metric
    exposition needs no emptiness guard at each call site. *)

val snapshot : t -> snapshot

val empty_snapshot : snapshot
(** What {!snapshot} returns for an empty histogram (all zeros). *)

val clear : t -> unit
(** Forget all samples (capacity is retained). *)

val total : t -> float
val merge : t -> t -> t
(** A fresh histogram holding both sample sets. *)

val merge_into : t -> t -> unit
(** [merge_into dst src] appends every sample of [src] to [dst]
    ([src] is unchanged).  Used to combine per-thread histograms after
    a multi-threaded run; [merge_into t t] doubles the sample set. *)
