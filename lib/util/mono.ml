external now_ns : unit -> int64 = "sdb_mono_now_ns"

(* Belt and braces: CLOCK_MONOTONIC never goes backward on one CPU, but
   clamp anyway so a reading can never regress past the max this
   process has observed (the float conversion is the only consumer). *)
let max_seen = Atomic.make 0L

let now_ns () =
  let t = now_ns () in
  let rec publish () =
    let seen = Atomic.get max_seen in
    if Int64.compare t seen <= 0 then seen
    else if Atomic.compare_and_set max_seen seen t then t
    else publish ()
  in
  publish ()

let now_s () = Int64.to_float (now_ns ()) /. 1e9
let elapsed_s ~since = Float.max 0.0 (now_s () -. since)
