(** The engine's small critical sections, modeled for {!Schedcheck}.

    Each function builds a fresh scenario per call (explorations re-run
    it once per schedule).  The lock scenarios run the {e real}
    protocol — [Sdb_vlock.Vlock_core.Make] instantiated over the harness's
    virtual primitives — so what is exhausted here is the code the
    engine ships.  The group-commit and replica-outbox scenarios are
    small faithful models of the coordinator and sender-thread
    hand-off in [lib/core] and [lib/replica]. *)

module Vsync : Sdb_vlock.Vlock_core.SYNC
(** {!Sdb_vlock.Vlock_core.SYNC} over the harness's virtual mutex/cond/self. *)

module V : Sdb_vlock.Vlock_core.S
(** The engine's lock protocol under the virtual scheduler. *)

val recursive_read : legacy:bool -> unit -> Schedcheck.scenario
(** One reader taking a nested Shared hold, racing one
    update-then-upgrade writer.  With [legacy:true] (the pre-fix gate:
    every Shared acquisition parks behind a pending upgrade) the
    explorer finds the recursive-read deadlock; with [legacy:false] the
    bounded space passes exhaustively. *)

val fresh_reader_gate : unit -> Schedcheck.scenario
(** A registered reader re-entering {e and} a first-time reader, racing
    an upgrader: re-entry must pass the pending-upgrade gate, a
    first-time acquisition must not be admitted while the upgrade
    drains. *)

val upgrade_vs_readers : readers:int -> unit -> Schedcheck.scenario
(** Readers observing a two-step mutation that the writer performs
    under Exclusive (after the §3 update-then-upgrade dance): no torn
    observation in any interleaving, no deadlock, registry in sync. *)

val upgrade_vs_readers_broken : unit -> Schedcheck.scenario
(** Detector of the detector: the writer mutates under Update without
    upgrading.  The explorer must find a schedule where a reader
    observes the torn intermediate state. *)

val group_commit : updaters:int -> unit -> Schedcheck.scenario
(** The group-commit coordinator (DESIGN.md §4d): join a forming group
    under the gc mutex, leader claims the ordered commit slot, seals
    under Update, flushes once, upgrades to apply with dense LSNs,
    wakes parked members.  Checks: one flush per group, commit-slot
    exclusivity, dense LSN assignment, every member woken with an
    outcome, lock invariants throughout. *)

val replica_outbox : pushes:int -> capacity:int -> unit -> Schedcheck.scenario
(** The bounded per-peer outbox hand-off ([lib/replica]): a committer
    enqueues (dropping on overflow) and wakes the sender; the sender
    drains, sending outside the mutex, and must observe the stop flag.
    Checks: FIFO delivery, delivered + dropped = pushed, clean
    shutdown in every interleaving (a missed wakeup shows up as a
    deadlock). *)

val epoch_readers : publishes:int -> unit -> Schedcheck.scenario
(** The lock-free read path's reclamation protocol
    ([Sdb_epoch.Epoch_core.Make] — the shipped code, over virtual
    atomics): one reader entering its epoch, loading the published
    version and using it across a scheduling point, racing a writer
    that publishes [publishes] fresh versions (retiring and reclaiming
    as the engine's Exclusive window does).  Checks, in every
    interleaving: no torn read (a version is observed whole or not at
    all), payload consistent with the version's LSN, no use-after-retire
    (a version is never reclaimed while a reader that loaded it is
    still inside its epoch), and — once the reader drains — one final
    sweep reclaims every retired version. *)

val epoch_shared_slot : unit -> Schedcheck.scenario
(** Two readers sharing one reader slot (the counted-registration path:
    the second enter piggybacks on the first's — possibly older —
    epoch), racing one publish.  Exhausts the enter/exit counting
    against concurrent retirement: one reader loads and checks its
    version, the other races pure enter/exit bracketing. *)

val epoch_broken_reclaim : unit -> Schedcheck.scenario
(** Detector of the detector: the writer frees retired versions without
    honouring the reader slots ([unsafe_reclaim_all]).  The explorer
    must find a schedule where a reader still inside its epoch observes
    its version reclaimed. *)

val epoch_broken_mutation : unit -> Schedcheck.scenario
(** Detector of the detector, torn-read edition: the writer mutates the
    published payload in place instead of publishing a fresh immutable
    version.  The explorer must find a schedule where a reader observes
    the half-written state. *)

val failure_detector : probes:bool list -> unit -> Schedcheck.scenario
(** The replica failure detector ([Sdb_replica.Detector] — the shipped
    code, not a model): a prober running the scripted heartbeat
    outcomes (with a scheduling point while each probe is in flight)
    races a ticker advancing virtual time.  Checks, in every
    interleaving: the only transitions into [Alive] are probe
    successes (a dead peer never revives by aging), aging and failures
    strictly demote (suspicion is never lost while a probe is in
    flight), and a run whose last recorded outcome is not a success
    does not end [Alive]. *)
