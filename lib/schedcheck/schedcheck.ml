(* Stateless schedule exploration over effect-based cooperative
   fibers.  Each modeled thread runs as a fiber that performs a [Step]
   effect at every scheduling point; the scheduler picks one enabled
   fiber at a time, so an execution is fully determined by the sequence
   of choices — which is what makes exhaustive DFS and replay work. *)

open Effect
open Effect.Deep

type step = {
  st_label : string;
  st_enabled : unit -> bool;  (* may the operation proceed right now? *)
  st_run : unit -> unit;  (* the atomic action, run when scheduled *)
}

type _ Effect.t += Step : step -> unit Effect.t

let always () = true
let nothing () = ()

let step ?(enabled = always) ?(run = nothing) label =
  perform (Step { st_label = label; st_enabled = enabled; st_run = run })

(* The id of the fiber currently executing (or most recently resumed).
   Single-threaded by construction: explorations never run modeled
   code concurrently, so one cell is enough. *)
let cur_tid = ref (-1)
[@@sdb.lint.allow
  "global-mutable: the explorer is single-threaded by construction — \
   modeled fibers run one at a time on the exploring thread, never \
   concurrently"]
let self () = !cur_tid

let yield label = step ("yield " ^ label)

(* ------------------------------------------------------------------ *)
(* Virtual primitives                                                  *)

module Mutex = struct
  type t = { m_name : string; mutable m_owner : int option }

  let create name = { m_name = name; m_owner = None }

  let lock m =
    step ("lock " ^ m.m_name)
      ~enabled:(fun () -> m.m_owner = None)
      ~run:(fun () -> m.m_owner <- Some (self ()))

  let unlock m =
    (* Immediate: the unlock itself cannot block, and any thread step
       interleaved "before" it is already covered by schedules where
       that step ran before this thread's previous scheduling point. *)
    match m.m_owner with
    | Some id when id = self () -> m.m_owner <- None
    | Some _ -> failwith ("Schedcheck.Mutex: " ^ m.m_name ^ " unlocked by non-owner")
    | None -> failwith ("Schedcheck.Mutex: " ^ m.m_name ^ " unlocked while free")

  let atomically m label f =
    step (m.m_name ^ ": " ^ label)
      ~enabled:(fun () -> m.m_owner = None)
      ~run:(fun () ->
        m.m_owner <- Some (self ());
        Fun.protect ~finally:(fun () -> m.m_owner <- None) f)
end

module Cond = struct
  type t = { c_name : string; mutable c_parked : int list }

  let create name = { c_name = name; c_parked = [] }

  let wait c m =
    let me = self () in
    (* Park + release happens atomically with the caller's previous
       step: the thread held the mutex, so no other thread could have
       observed the in-between state anyway. *)
    (match m.Mutex.m_owner with
    | Some id when id = me -> ()
    | _ -> failwith ("Schedcheck.Cond: wait on " ^ c.c_name ^ " without the mutex"));
    m.Mutex.m_owner <- None;
    c.c_parked <- me :: c.c_parked;
    (* Wake-up: enabled once broadcast un-parks us AND the mutex is
       free; re-acquisition contends like any lock. *)
    step ("wake " ^ c.c_name)
      ~enabled:(fun () ->
        (not (List.mem me c.c_parked)) && m.Mutex.m_owner = None)
      ~run:(fun () -> m.Mutex.m_owner <- Some me)

  let broadcast c = c.c_parked <- []
end

(* ------------------------------------------------------------------ *)
(* Scenarios                                                           *)

type scenario = {
  sc_threads : (string * (unit -> unit)) list;
  sc_invariant : unit -> unit;
  sc_finale : unit -> unit;
}

let scenario ?(invariant = nothing) ?(finale = nothing) threads =
  { sc_threads = threads; sc_invariant = invariant; sc_finale = finale }

(* ------------------------------------------------------------------ *)
(* One execution                                                       *)

type fstate =
  | Ready of step * (unit, unit) continuation
  | Finished

type fiber = { f_tid : int; f_name : string; mutable f_state : fstate }

type exec_end =
  | E_complete
  | E_deadlock of (int * string) list
  | E_raised of exn
  | E_step_bound

(* Run one execution along [choices] (extending with first-enabled
   when the prefix runs out).  Returns how it ended, the decision
   points seen ((choice, alternatives), only where alternatives > 1 —
   forced steps are not decisions and are not backtracked over), and
   the trace. *)
let run_execution ~make ~choices ~max_steps =
  let sc = make () in
  let failure = ref None in
  let fibers =
    List.mapi
      (fun i (name, _) -> { f_tid = i; f_name = name; f_state = Finished })
      sc.sc_threads
  in
  let start fb fn =
    let handler =
      {
        retc = (fun () -> fb.f_state <- Finished);
        exnc =
          (fun e ->
            fb.f_state <- Finished;
            if !failure = None then failure := Some e);
        effc =
          (fun (type a) (eff : a Effect.t) ->
            match eff with
            | Step s ->
              Some
                (fun (k : (a, unit) continuation) ->
                  fb.f_state <- Ready (s, k))
            | _ -> None);
      }
    in
    cur_tid := fb.f_tid;
    match_with fn () handler
  in
  List.iter2 (fun fb (_, fn) -> start fb fn) fibers sc.sc_threads;
  let decisions = ref [] (* (chosen, n_enabled), newest first *) in
  let trace = ref [] in
  let steps = ref 0 in
  let remaining = ref choices in
  let rec loop () =
    match !failure with
    | Some e -> E_raised e
    | None -> (
      let enabled =
        List.filter
          (fun fb ->
            match fb.f_state with
            | Ready (s, _) -> s.st_enabled ()
            | Finished -> false)
          fibers
      in
      match enabled with
      | [] ->
        let alive =
          List.filter_map
            (fun fb ->
              match fb.f_state with
              | Finished -> None
              | Ready _ -> Some (fb.f_tid, fb.f_name))
            fibers
        in
        if alive = [] then
          match sc.sc_finale () with
          | () -> E_complete
          | exception e -> E_raised e
        else E_deadlock alive
      | _ ->
        let n = List.length enabled in
        let choice =
          if n = 1 then 0
          else
            match !remaining with
            | [] -> 0
            | c :: rest ->
              remaining := rest;
              if c >= n then
                invalid_arg "Schedcheck: schedule diverged (choice out of range)"
              else c
        in
        if n > 1 then decisions := (choice, n) :: !decisions;
        let fb = List.nth enabled choice in
        (match fb.f_state with
        | Finished -> assert false
        | Ready (s, k) ->
          incr steps;
          if !steps > max_steps then E_step_bound
          else begin
            trace := (fb.f_tid, fb.f_name, s.st_label) :: !trace;
            match
              cur_tid := fb.f_tid;
              s.st_run ();
              continue k ()
            with
            | () -> (
              match sc.sc_invariant () with
              | () -> loop ()
              | exception e -> E_raised e)
            | exception e -> E_raised e
          end))
  in
  let ended = loop () in
  (ended, List.rev !decisions, List.rev !trace)

(* ------------------------------------------------------------------ *)
(* Exploration                                                         *)

type trace_entry = { te_tid : int; te_thread : string; te_label : string }

type report = {
  r_schedule : int list;
  r_trace : trace_entry list;
  r_blocked : (int * string) list;
}

type outcome =
  | Passed of { executions : int }
  | Deadlocked of report
  | Violated of { exn_text : string; report : report }
  | Step_bound_exceeded of report
  | Schedule_bound_exceeded of { executions : int }

let to_trace raw =
  List.map (fun (tid, name, lbl) -> { te_tid = tid; te_thread = name; te_label = lbl }) raw

let to_report ?(blocked = []) decisions raw_trace =
  {
    r_schedule = List.map fst decisions;
    r_trace = to_trace raw_trace;
    r_blocked = blocked;
  }

(* The next DFS prefix: deepest decision with an unexplored sibling,
   bumped; everything after it dropped.  None = space exhausted. *)
let backtrack decisions =
  let arr = Array.of_list decisions in
  let rec scan i =
    if i < 0 then None
    else
      let choice, n = arr.(i) in
      if choice + 1 < n then
        Some (List.map fst (Array.to_list (Array.sub arr 0 i)) @ [ choice + 1 ])
      else scan (i - 1)
  in
  scan (Array.length arr - 1)

let explore ?(max_schedules = 200_000) ?(max_steps = 20_000) make =
  let rec go prefix executions =
    if executions >= max_schedules then
      Schedule_bound_exceeded { executions }
    else
      let ended, decisions, raw = run_execution ~make ~choices:prefix ~max_steps in
      let executions = executions + 1 in
      match ended with
      | E_complete -> (
        match backtrack decisions with
        | None -> Passed { executions }
        | Some prefix -> go prefix executions)
      | E_deadlock blocked -> Deadlocked (to_report ~blocked decisions raw)
      | E_raised e ->
        Violated { exn_text = Printexc.to_string e; report = to_report decisions raw }
      | E_step_bound -> Step_bound_exceeded (to_report decisions raw)
  in
  go [] 0

let replay make ~schedule =
  let ended, decisions, raw = run_execution ~make ~choices:schedule ~max_steps:1_000_000 in
  let outcome =
    match ended with
    | E_complete -> Passed { executions = 1 }
    | E_deadlock blocked -> Deadlocked (to_report ~blocked decisions raw)
    | E_raised e ->
      Violated { exn_text = Printexc.to_string e; report = to_report decisions raw }
    | E_step_bound -> Step_bound_exceeded (to_report decisions raw)
  in
  (outcome, to_trace raw)

let pp_report b r =
  Buffer.add_string b
    (Printf.sprintf "schedule: [%s]\n"
       (String.concat "; " (List.map string_of_int r.r_schedule)));
  if r.r_blocked <> [] then
    Buffer.add_string b
      (Printf.sprintf "blocked: %s\n"
         (String.concat ", "
            (List.map (fun (tid, n) -> Printf.sprintf "%d:%s" tid n) r.r_blocked)));
  Buffer.add_string b "trace:\n";
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf "  %d:%-10s %s\n" e.te_tid e.te_thread e.te_label))
    r.r_trace

let pp_outcome o =
  let b = Buffer.create 256 in
  (match o with
  | Passed { executions } ->
    Buffer.add_string b
      (Printf.sprintf "passed: %d schedules explored exhaustively" executions)
  | Deadlocked r ->
    Buffer.add_string b "DEADLOCK\n";
    pp_report b r
  | Violated { exn_text; report } ->
    Buffer.add_string b (Printf.sprintf "VIOLATION: %s\n" exn_text);
    pp_report b report
  | Step_bound_exceeded r ->
    Buffer.add_string b "STEP BOUND EXCEEDED (livelock?)\n";
    pp_report b r
  | Schedule_bound_exceeded { executions } ->
    Buffer.add_string b
      (Printf.sprintf "schedule bound exceeded after %d executions" executions));
  Buffer.contents b
