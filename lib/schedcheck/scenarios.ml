(* The engine's critical sections under the virtual scheduler.  The
   lock scenarios instantiate Sdb_vlock.Vlock_core.Make over Schedcheck's
   primitives, so the protocol being exhausted is the one the engine
   ships; the group-commit and outbox scenarios model the coordinator
   and sender hand-off from lib/core and lib/replica at the same
   granularity their mutexes give them. *)

open Sdb_vlock.Vlock_core

module Vsync = struct
  type mutex = Schedcheck.Mutex.t
  type cond = Schedcheck.Cond.t

  let counter = ref 0

  let make_mutex () =
    incr counter;
    Schedcheck.Mutex.create (Printf.sprintf "vlock.mutex/%d" !counter)

  let make_cond () =
    incr counter;
    Schedcheck.Cond.create (Printf.sprintf "vlock.changed/%d" !counter)

  let lock = Schedcheck.Mutex.lock
  let unlock = Schedcheck.Mutex.unlock
  let wait = Schedcheck.Cond.wait
  let broadcast = Schedcheck.Cond.broadcast
  let self = Schedcheck.self
end

module V = Sdb_vlock.Vlock_core.Make (Vsync)

let check cond msg = if not cond then failwith msg

(* Holds after every step of every schedule. *)
let lock_invariant v () =
  let i = V.inspect v in
  check
    (not (i.i_exclusive && i.i_readers > 0))
    "vlock: exclusive held while readers active";
  check
    (not (i.i_exclusive && i.i_update))
    "vlock: exclusive and update held simultaneously";
  check (i.i_hold_sum = i.i_readers)
    "vlock: reader registry out of sync with n_readers";
  check (i.i_readers >= 0) "vlock: negative reader count"

(* Holds once every modeled thread has completed. *)
let drained v () =
  let i = V.inspect v in
  check
    (i.i_readers = 0 && (not i.i_update) && (not i.i_exclusive)
    && (not i.i_upgrade_pending)
    && i.i_hold_sum = 0)
    "vlock: not fully released at end"

(* ------------------------------------------------------------------ *)

let recursive_read ~legacy () =
  let v = V.create ~legacy_recursive_block:legacy () in
  let reader () =
    V.acquire v Shared;
    Schedcheck.yield "reading";
    (* The enquiry path re-entering Shared — under the legacy gate this
       parks behind the upgrader's pending upgrade while the upgrader
       drains this very thread: the deadlock of ISSUE 7. *)
    V.acquire v Shared;
    V.release v Shared;
    V.release v Shared
  in
  let upgrader () =
    V.acquire v Update;
    V.upgrade v;
    V.release v Exclusive
  in
  Schedcheck.scenario
    ~invariant:(lock_invariant v)
    ~finale:(drained v)
    [ ("reader", reader); ("upgrader", upgrader) ]

let fresh_reader_gate () =
  let v = V.create () in
  let admitted_mid_drain = ref false in
  let nested () =
    V.acquire v Shared;
    Schedcheck.yield "between holds";
    V.acquire v Shared;
    V.release v Shared;
    V.release v Shared
  in
  let fresh () =
    V.acquire v Shared;
    (* Runs atomically with the admission: a first-time reader admitted
       while the upgrade is still draining would observe the flag. *)
    if (V.inspect v).i_upgrade_pending then admitted_mid_drain := true;
    V.release v Shared
  in
  let upgrader () =
    V.acquire v Update;
    V.upgrade v;
    V.release v Exclusive
  in
  Schedcheck.scenario
    ~invariant:(lock_invariant v)
    ~finale:(fun () ->
      drained v ();
      check
        (not !admitted_mid_drain)
        "vlock: first-time reader admitted during an upgrade drain")
    [ ("nested", nested); ("fresh", fresh); ("upgrader", upgrader) ]

let upgrade_vs_readers ~readers () =
  let v = V.create () in
  let data = ref 0 in
  let reader name () =
    V.acquire v Shared;
    let a = !data in
    Schedcheck.yield "between reads";
    let b = !data in
    V.release v Shared;
    check (a = b) (name ^ ": torn read (value changed under Shared)");
    check (a mod 2 = 0) (name ^ ": observed odd intermediate state")
  in
  let writer () =
    V.acquire v Update;
    (* Reads may proceed here — that is the point of Update. *)
    Schedcheck.yield "deliberating";
    V.upgrade v;
    incr data;
    Schedcheck.yield "mid-mutation";
    incr data;
    V.release v Exclusive
  in
  Schedcheck.scenario
    ~invariant:(lock_invariant v)
    ~finale:(fun () ->
      drained v ();
      check (!data = 2) "writer: both increments applied")
    (List.init readers (fun i ->
         let name = Printf.sprintf "reader%d" i in
         (name, reader name))
    @ [ ("writer", writer) ])

let upgrade_vs_readers_broken () =
  let v = V.create () in
  let data = ref 0 in
  let reader () =
    V.acquire v Shared;
    let a = !data in
    Schedcheck.yield "between reads";
    let b = !data in
    V.release v Shared;
    check (a = b) "reader: torn read (mutation under Update, no upgrade)";
    check (a mod 2 = 0) "reader: observed odd intermediate state"
  in
  let writer () =
    (* The bug this scenario must catch: mutating without the upgrade. *)
    V.acquire v Update;
    incr data;
    Schedcheck.yield "mid-mutation";
    incr data;
    V.release v Update
  in
  Schedcheck.scenario
    ~invariant:(lock_invariant v)
    [ ("reader", reader); ("writer", writer) ]

(* ------------------------------------------------------------------ *)

let group_commit ~updaters () =
  let v = V.create () in
  let gc_m = Schedcheck.Mutex.create "gc.mutex" in
  let gc_c = Schedcheck.Cond.create "gc.cond" in
  let forming = ref [] in
  let committing = ref false in
  let next_lsn = ref 0 in
  let flushes = ref 0 in
  let groups = ref 0 in
  let lsn = Array.make updaters 0 in
  let woken = Array.make updaters false in
  let updater i () =
    Schedcheck.Mutex.lock gc_m;
    forming := !forming @ [ i ];
    if List.length !forming = 1 then begin
      (* Leader: claim the ordered commit slot, seal the group. *)
      while !committing do
        Schedcheck.Cond.wait gc_c gc_m
      done;
      committing := true;
      let group = !forming in
      forming := [];
      incr groups;
      Schedcheck.Mutex.unlock gc_m;
      (* Log write + fsync happen under Update, outside the gc mutex. *)
      V.acquire v Update;
      check !committing "group-commit: flush outside the commit slot";
      Schedcheck.yield "fsync";
      incr flushes;
      V.upgrade v;
      List.iter
        (fun m ->
          incr next_lsn;
          lsn.(m) <- !next_lsn)
        group;
      V.release v Exclusive;
      Schedcheck.Mutex.lock gc_m;
      committing := false;
      List.iter (fun m -> woken.(m) <- true) group;
      Schedcheck.Mutex.unlock gc_m;
      Schedcheck.Cond.broadcast gc_c
    end
    else begin
      (* Member: park until the leader publishes my outcome. *)
      while not woken.(i) do
        Schedcheck.Cond.wait gc_c gc_m
      done;
      Schedcheck.Mutex.unlock gc_m;
      check (lsn.(i) > 0) "group-commit: woken without an assigned LSN"
    end
  in
  Schedcheck.scenario
    ~invariant:(lock_invariant v)
    ~finale:(fun () ->
      drained v ();
      check (not !committing) "group-commit: commit slot still held at end";
      check (!forming = []) "group-commit: members left in a forming group";
      check (!flushes = !groups) "group-commit: one flush per group violated";
      check (!next_lsn = updaters) "group-commit: LSNs not dense";
      Array.iteri
        (fun i l ->
          check (l > 0) (Printf.sprintf "group-commit: updater %d has no LSN" i);
          check woken.(i)
            (Printf.sprintf "group-commit: updater %d never woken" i))
        lsn;
      let sorted = List.sort compare (Array.to_list lsn) in
      check
        (sorted = List.init updaters (fun i -> i + 1))
        "group-commit: duplicate or out-of-range LSN")
    (List.init updaters (fun i -> (Printf.sprintf "updater%d" i, updater i)))

(* ------------------------------------------------------------------ *)

let replica_outbox ~pushes ~capacity () =
  let m = Schedcheck.Mutex.create "outbox.mutex" in
  let c = Schedcheck.Cond.create "outbox.cond" in
  let q = Queue.create () in
  let stop = ref false in
  let dropped = ref 0 in
  let delivered = ref [] in
  let committer () =
    for i = 1 to pushes do
      Schedcheck.Mutex.atomically m "push" (fun () ->
          if Queue.length q >= capacity then incr dropped else Queue.push i q);
      Schedcheck.Cond.broadcast c
    done;
    Schedcheck.Mutex.atomically m "stop" (fun () -> stop := true);
    Schedcheck.Cond.broadcast c
  in
  let sender () =
    let running = ref true in
    while !running do
      Schedcheck.Mutex.lock m;
      while Queue.is_empty q && not !stop do
        Schedcheck.Cond.wait c m
      done;
      if Queue.is_empty q then begin
        (* stop observed with the queue drained *)
        running := false;
        Schedcheck.Mutex.unlock m
      end
      else begin
        let x = Queue.pop q in
        Schedcheck.Mutex.unlock m;
        (* The send itself runs outside the mutex. *)
        Schedcheck.yield "send";
        delivered := x :: !delivered
      end
    done
  in
  Schedcheck.scenario
    ~finale:(fun () ->
      let d = List.rev !delivered in
      let rec mono = function
        | a :: (b :: _ as t) -> a < b && mono t
        | _ -> true
      in
      check (mono d) "outbox: out-of-order delivery";
      check
        (List.length d + !dropped = pushes)
        "outbox: delivered + dropped <> pushed")
    [ ("committer", committer); ("sender", sender) ]

(* ------------------------------------------------------------------ *)

(* Epoch-published snapshots: [Sdb_epoch.Epoch_core.Make] over virtual
   atomics — the real reclamation protocol under the virtual scheduler,
   exactly as the lock scenarios run the real Vlock.  Each atomic
   operation is one scheduling point, after which the plain-ref
   operation runs without interruption (the cooperative scheduler only
   switches at yields): sequentially-consistent atomics, dscheck
   style. *)
module Vatom = struct
  type 'a t = { mutable av : 'a }

  let make v = { av = v }

  let get c =
    Schedcheck.yield "atomic.get";
    c.av

  let exchange c x =
    Schedcheck.yield "atomic.exchange";
    let old = c.av in
    c.av <- x;
    old

  let compare_and_set c seen x =
    Schedcheck.yield "atomic.cas";
    if c.av == seen then begin
      c.av <- x;
      true
    end
    else false

  let fetch_and_add c n =
    Schedcheck.yield "atomic.faa";
    let old = c.av in
    c.av <- old + n;
    old
end

module E = Sdb_epoch.Epoch_core.Make (Vatom)

(* What a reader must observe in every interleaving, given that the
   writer publishes version k as payload (k, k) at LSN k: the pair is
   consistent (no torn read — versions are whole or not at all), the
   payload matches the version's LSN (the read_with_lsn atomicity), and
   the version is never reclaimed while the reader is still inside its
   epoch (no use-after-retire).  The yield between load and the checks
   is the reader "using" its snapshot: the window where a wrong
   reclamation protocol would free the version under it. *)
let epoch_reader_checks name v =
  let a, b = v.E.payload in
  check (a = b) (name ^ ": torn read (inconsistent payload pair)");
  check (a = v.E.vlsn) (name ^ ": payload does not match the version's LSN");
  check (not v.E.reclaimed)
    (name ^ ": use-after-retire (version reclaimed while a reader held it)")

let epoch_readers ~publishes () =
  let e = E.create ~slots:1 ~lsn:0 (0, 0) in
  let readers_done = ref 0 in
  let reader () =
    E.enter e ~slot:0;
    let v = E.load e in
    Schedcheck.yield "reading";
    epoch_reader_checks "reader" v;
    E.exit_ e ~slot:0;
    incr readers_done
  in
  let writer () =
    for k = 1 to publishes do
      (* The engine calls publish inside its Exclusive window; retire
         and reclaim ride along. *)
      E.publish e ~lsn:k (k, k)
    done;
    (* End-state sweep.  The epoch operations are scheduling points, so
       the finale may not perform them — the sweep runs inside this
       modeled thread instead, gated until the reader has drained.  The
       gate adds no branching: while disabled the writer is simply not
       runnable, and once enabled it is the only fiber left. *)
    Schedcheck.step "await reader drain" ~enabled:(fun () ->
        !readers_done = 1);
    check (E.active_readers e = 0) "epoch: reader slot not empty at end";
    let v = E.load e in
    check
      (v.E.vlsn = publishes && not v.E.reclaimed)
      "epoch: current version wrong or reclaimed at end";
    (* Every reader is gone, so one more sweep must free everything
       the publishes retired. *)
    ignore (E.reclaim e : int);
    check (E.retired_count e = 0) "epoch: retired versions left unreclaimed";
    check
      (E.reclaimed_total e = publishes)
      "epoch: reclaimed count does not match retired count"
  in
  Schedcheck.scenario [ ("reader", reader); ("writer", writer) ]

(* Two readers sharing one slot: the counted-registration path (the
   second enter piggybacks on the first's — possibly older — epoch).
   The invariants are the same; what this adds is exhausting the
   enter/exit counting against concurrent retirement. *)
let epoch_shared_slot () =
  let e = E.create ~slots:1 ~lsn:0 (0, 0) in
  let readers_done = ref 0 in
  let reader () =
    E.enter e ~slot:0;
    let v = E.load e in
    epoch_reader_checks "reader" v;
    E.exit_ e ~slot:0;
    incr readers_done
  in
  (* Enter/exit with no read in between: the pure counting race.  Its
     version checks would duplicate [reader]'s (and [epoch_readers]);
     dropping them keeps the three-thread space exhaustible. *)
  let racer () =
    E.enter e ~slot:0;
    E.exit_ e ~slot:0;
    incr readers_done
  in
  let writer () =
    E.publish e ~lsn:1 (1, 1);
    (* See [epoch_readers] for why the sweep lives here. *)
    Schedcheck.step "await reader drain" ~enabled:(fun () ->
        !readers_done = 2);
    check (E.active_readers e = 0) "epoch: shared slot not empty at end";
    ignore (E.reclaim e : int);
    check (E.retired_count e = 0) "epoch: retired versions left unreclaimed"
  in
  Schedcheck.scenario
    [ ("reader", reader); ("racer", racer); ("writer", writer) ]

(* Detector of the detector: a writer that reclaims without honouring
   the reader slots.  The explorer must find a schedule where a reader
   still inside its epoch observes its version reclaimed. *)
let epoch_broken_reclaim () =
  let e = E.create ~slots:1 ~lsn:0 (0, 0) in
  let reader () =
    E.enter e ~slot:0;
    let v = E.load e in
    Schedcheck.yield "reading";
    epoch_reader_checks "reader" v;
    E.exit_ e ~slot:0
  in
  let writer () =
    E.publish e ~lsn:1 (1, 1);
    (* The bug: freeing retired versions while a slot is registered. *)
    ignore (E.unsafe_reclaim_all e : int)
  in
  Schedcheck.scenario [ ("reader", reader); ("writer", writer) ]

(* Detector of the detector, torn-read edition: a writer that mutates
   the published payload in place instead of path-copying and
   publishing a fresh version.  The explorer must find a schedule where
   a reader observes the half-written pair. *)
let epoch_broken_mutation () =
  let p = [| 0; 0 |] in
  let e = E.create ~slots:1 ~lsn:0 p in
  let reader () =
    E.enter e ~slot:0;
    let v = E.load e in
    let a = v.E.payload.(0) in
    Schedcheck.yield "between reads";
    let b = v.E.payload.(1) in
    check (a = b) "reader: torn read (payload mutated under a live epoch)";
    E.exit_ e ~slot:0
  in
  let writer () =
    (* The bug: the "next version" shares structure it then mutates. *)
    Schedcheck.yield "mutate.0";
    p.(0) <- 1;
    Schedcheck.yield "mutate.1";
    p.(1) <- 1
  in
  Schedcheck.scenario [ ("reader", reader); ("writer", writer) ]

(* ------------------------------------------------------------------ *)

let failure_detector ~probes () =
  (* The real shipped detector ([lib/replica/detector.ml]) under the
     virtual scheduler: a prober thread runs a scripted sequence of
     heartbeat outcomes with a scheduling point while each probe is in
     flight, racing a ticker that advances virtual time and ages the
     detector.  The invariants are exactly the detector's contract:

     - the only transitions into Alive are caused by a probe success
       (so a peer never revives by aging — dead stays dead until a
       heartbeat actually answers), and
     - aging and failures only ever demote (alive → suspect → dead),
       so suspicion is never lost while a probe is still in flight. *)
  let module D = Sdb_replica.Detector in
  let m = Schedcheck.Mutex.create "detector.mutex" in
  let cfg =
    { D.heartbeat_interval_s = 1.0; suspect_after_s = 2.0; dead_after_s = 4.0 }
  in
  let now = ref 0.0 in
  let d = D.create ~now:!now cfg in
  let seen = ref [] in
  let note tr = match tr with None -> () | Some tr -> seen := tr :: !seen in
  let rank = function D.Alive -> 0 | D.Suspect -> 1 | D.Dead -> 2 in
  let prober () =
    List.iter
      (fun ok ->
        Schedcheck.Mutex.atomically m "probe start" (fun () ->
            D.probe_started d);
        (* The RPC is in flight: everything else may interleave here. *)
        Schedcheck.yield "probe in flight";
        Schedcheck.Mutex.atomically m "probe done" (fun () ->
            let t = !now in
            note (if ok then D.probe_succeeded d ~now:t
                  else D.probe_failed d ~now:t)))
      probes
  in
  let ticker () =
    for _ = 1 to 3 do
      Schedcheck.Mutex.atomically m "advance and tick" (fun () ->
          now := !now +. 2.5;
          note (D.tick d ~now:!now))
    done
  in
  let check_transitions () =
    List.iter
      (fun tr ->
        (match tr.D.tr_cause with
        | `Success -> ()
        | `Failure | `Timeout ->
          check
            (rank tr.D.tr_to > rank tr.D.tr_from)
            "detector: failure/aging transition did not demote");
        check
          (tr.D.tr_to <> D.Alive || tr.D.tr_cause = `Success)
          "detector: revived without a successful heartbeat")
      !seen
  in
  Schedcheck.scenario ~invariant:check_transitions
    ~finale:(fun () ->
      check_transitions ();
      (* The ticker alone pushed age past dead_after_s: unless the very
         last recorded outcome is a success, the peer must not be
         Alive at the end. *)
      match !seen with
      | { D.tr_cause = `Success; _ } :: _ -> ()
      | _ ->
        check
          (D.state d <> D.Alive || List.for_all (fun ok -> ok) probes
           && !seen = [])
          "detector: alive at end without a closing success")
    [ ("prober", prober); ("ticker", ticker) ]
