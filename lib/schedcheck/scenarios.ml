(* The engine's critical sections under the virtual scheduler.  The
   lock scenarios instantiate Sdb_vlock.Vlock_core.Make over Schedcheck's
   primitives, so the protocol being exhausted is the one the engine
   ships; the group-commit and outbox scenarios model the coordinator
   and sender hand-off from lib/core and lib/replica at the same
   granularity their mutexes give them. *)

open Sdb_vlock.Vlock_core

module Vsync = struct
  type mutex = Schedcheck.Mutex.t
  type cond = Schedcheck.Cond.t

  let counter = ref 0

  let make_mutex () =
    incr counter;
    Schedcheck.Mutex.create (Printf.sprintf "vlock.mutex/%d" !counter)

  let make_cond () =
    incr counter;
    Schedcheck.Cond.create (Printf.sprintf "vlock.changed/%d" !counter)

  let lock = Schedcheck.Mutex.lock
  let unlock = Schedcheck.Mutex.unlock
  let wait = Schedcheck.Cond.wait
  let broadcast = Schedcheck.Cond.broadcast
  let self = Schedcheck.self
end

module V = Sdb_vlock.Vlock_core.Make (Vsync)

let check cond msg = if not cond then failwith msg

(* Holds after every step of every schedule. *)
let lock_invariant v () =
  let i = V.inspect v in
  check
    (not (i.i_exclusive && i.i_readers > 0))
    "vlock: exclusive held while readers active";
  check
    (not (i.i_exclusive && i.i_update))
    "vlock: exclusive and update held simultaneously";
  check (i.i_hold_sum = i.i_readers)
    "vlock: reader registry out of sync with n_readers";
  check (i.i_readers >= 0) "vlock: negative reader count"

(* Holds once every modeled thread has completed. *)
let drained v () =
  let i = V.inspect v in
  check
    (i.i_readers = 0 && (not i.i_update) && (not i.i_exclusive)
    && (not i.i_upgrade_pending)
    && i.i_hold_sum = 0)
    "vlock: not fully released at end"

(* ------------------------------------------------------------------ *)

let recursive_read ~legacy () =
  let v = V.create ~legacy_recursive_block:legacy () in
  let reader () =
    V.acquire v Shared;
    Schedcheck.yield "reading";
    (* The enquiry path re-entering Shared — under the legacy gate this
       parks behind the upgrader's pending upgrade while the upgrader
       drains this very thread: the deadlock of ISSUE 7. *)
    V.acquire v Shared;
    V.release v Shared;
    V.release v Shared
  in
  let upgrader () =
    V.acquire v Update;
    V.upgrade v;
    V.release v Exclusive
  in
  Schedcheck.scenario
    ~invariant:(lock_invariant v)
    ~finale:(drained v)
    [ ("reader", reader); ("upgrader", upgrader) ]

let fresh_reader_gate () =
  let v = V.create () in
  let admitted_mid_drain = ref false in
  let nested () =
    V.acquire v Shared;
    Schedcheck.yield "between holds";
    V.acquire v Shared;
    V.release v Shared;
    V.release v Shared
  in
  let fresh () =
    V.acquire v Shared;
    (* Runs atomically with the admission: a first-time reader admitted
       while the upgrade is still draining would observe the flag. *)
    if (V.inspect v).i_upgrade_pending then admitted_mid_drain := true;
    V.release v Shared
  in
  let upgrader () =
    V.acquire v Update;
    V.upgrade v;
    V.release v Exclusive
  in
  Schedcheck.scenario
    ~invariant:(lock_invariant v)
    ~finale:(fun () ->
      drained v ();
      check
        (not !admitted_mid_drain)
        "vlock: first-time reader admitted during an upgrade drain")
    [ ("nested", nested); ("fresh", fresh); ("upgrader", upgrader) ]

let upgrade_vs_readers ~readers () =
  let v = V.create () in
  let data = ref 0 in
  let reader name () =
    V.acquire v Shared;
    let a = !data in
    Schedcheck.yield "between reads";
    let b = !data in
    V.release v Shared;
    check (a = b) (name ^ ": torn read (value changed under Shared)");
    check (a mod 2 = 0) (name ^ ": observed odd intermediate state")
  in
  let writer () =
    V.acquire v Update;
    (* Reads may proceed here — that is the point of Update. *)
    Schedcheck.yield "deliberating";
    V.upgrade v;
    incr data;
    Schedcheck.yield "mid-mutation";
    incr data;
    V.release v Exclusive
  in
  Schedcheck.scenario
    ~invariant:(lock_invariant v)
    ~finale:(fun () ->
      drained v ();
      check (!data = 2) "writer: both increments applied")
    (List.init readers (fun i ->
         let name = Printf.sprintf "reader%d" i in
         (name, reader name))
    @ [ ("writer", writer) ])

let upgrade_vs_readers_broken () =
  let v = V.create () in
  let data = ref 0 in
  let reader () =
    V.acquire v Shared;
    let a = !data in
    Schedcheck.yield "between reads";
    let b = !data in
    V.release v Shared;
    check (a = b) "reader: torn read (mutation under Update, no upgrade)";
    check (a mod 2 = 0) "reader: observed odd intermediate state"
  in
  let writer () =
    (* The bug this scenario must catch: mutating without the upgrade. *)
    V.acquire v Update;
    incr data;
    Schedcheck.yield "mid-mutation";
    incr data;
    V.release v Update
  in
  Schedcheck.scenario
    ~invariant:(lock_invariant v)
    [ ("reader", reader); ("writer", writer) ]

(* ------------------------------------------------------------------ *)

let group_commit ~updaters () =
  let v = V.create () in
  let gc_m = Schedcheck.Mutex.create "gc.mutex" in
  let gc_c = Schedcheck.Cond.create "gc.cond" in
  let forming = ref [] in
  let committing = ref false in
  let next_lsn = ref 0 in
  let flushes = ref 0 in
  let groups = ref 0 in
  let lsn = Array.make updaters 0 in
  let woken = Array.make updaters false in
  let updater i () =
    Schedcheck.Mutex.lock gc_m;
    forming := !forming @ [ i ];
    if List.length !forming = 1 then begin
      (* Leader: claim the ordered commit slot, seal the group. *)
      while !committing do
        Schedcheck.Cond.wait gc_c gc_m
      done;
      committing := true;
      let group = !forming in
      forming := [];
      incr groups;
      Schedcheck.Mutex.unlock gc_m;
      (* Log write + fsync happen under Update, outside the gc mutex. *)
      V.acquire v Update;
      check !committing "group-commit: flush outside the commit slot";
      Schedcheck.yield "fsync";
      incr flushes;
      V.upgrade v;
      List.iter
        (fun m ->
          incr next_lsn;
          lsn.(m) <- !next_lsn)
        group;
      V.release v Exclusive;
      Schedcheck.Mutex.lock gc_m;
      committing := false;
      List.iter (fun m -> woken.(m) <- true) group;
      Schedcheck.Mutex.unlock gc_m;
      Schedcheck.Cond.broadcast gc_c
    end
    else begin
      (* Member: park until the leader publishes my outcome. *)
      while not woken.(i) do
        Schedcheck.Cond.wait gc_c gc_m
      done;
      Schedcheck.Mutex.unlock gc_m;
      check (lsn.(i) > 0) "group-commit: woken without an assigned LSN"
    end
  in
  Schedcheck.scenario
    ~invariant:(lock_invariant v)
    ~finale:(fun () ->
      drained v ();
      check (not !committing) "group-commit: commit slot still held at end";
      check (!forming = []) "group-commit: members left in a forming group";
      check (!flushes = !groups) "group-commit: one flush per group violated";
      check (!next_lsn = updaters) "group-commit: LSNs not dense";
      Array.iteri
        (fun i l ->
          check (l > 0) (Printf.sprintf "group-commit: updater %d has no LSN" i);
          check woken.(i)
            (Printf.sprintf "group-commit: updater %d never woken" i))
        lsn;
      let sorted = List.sort compare (Array.to_list lsn) in
      check
        (sorted = List.init updaters (fun i -> i + 1))
        "group-commit: duplicate or out-of-range LSN")
    (List.init updaters (fun i -> (Printf.sprintf "updater%d" i, updater i)))

(* ------------------------------------------------------------------ *)

let replica_outbox ~pushes ~capacity () =
  let m = Schedcheck.Mutex.create "outbox.mutex" in
  let c = Schedcheck.Cond.create "outbox.cond" in
  let q = Queue.create () in
  let stop = ref false in
  let dropped = ref 0 in
  let delivered = ref [] in
  let committer () =
    for i = 1 to pushes do
      Schedcheck.Mutex.atomically m "push" (fun () ->
          if Queue.length q >= capacity then incr dropped else Queue.push i q);
      Schedcheck.Cond.broadcast c
    done;
    Schedcheck.Mutex.atomically m "stop" (fun () -> stop := true);
    Schedcheck.Cond.broadcast c
  in
  let sender () =
    let running = ref true in
    while !running do
      Schedcheck.Mutex.lock m;
      while Queue.is_empty q && not !stop do
        Schedcheck.Cond.wait c m
      done;
      if Queue.is_empty q then begin
        (* stop observed with the queue drained *)
        running := false;
        Schedcheck.Mutex.unlock m
      end
      else begin
        let x = Queue.pop q in
        Schedcheck.Mutex.unlock m;
        (* The send itself runs outside the mutex. *)
        Schedcheck.yield "send";
        delivered := x :: !delivered
      end
    done
  in
  Schedcheck.scenario
    ~finale:(fun () ->
      let d = List.rev !delivered in
      let rec mono = function
        | a :: (b :: _ as t) -> a < b && mono t
        | _ -> true
      in
      check (mono d) "outbox: out-of-order delivery";
      check
        (List.length d + !dropped = pushes)
        "outbox: delivered + dropped <> pushed")
    [ ("committer", committer); ("sender", sender) ]

(* ------------------------------------------------------------------ *)

let failure_detector ~probes () =
  (* The real shipped detector ([lib/replica/detector.ml]) under the
     virtual scheduler: a prober thread runs a scripted sequence of
     heartbeat outcomes with a scheduling point while each probe is in
     flight, racing a ticker that advances virtual time and ages the
     detector.  The invariants are exactly the detector's contract:

     - the only transitions into Alive are caused by a probe success
       (so a peer never revives by aging — dead stays dead until a
       heartbeat actually answers), and
     - aging and failures only ever demote (alive → suspect → dead),
       so suspicion is never lost while a probe is still in flight. *)
  let module D = Sdb_replica.Detector in
  let m = Schedcheck.Mutex.create "detector.mutex" in
  let cfg =
    { D.heartbeat_interval_s = 1.0; suspect_after_s = 2.0; dead_after_s = 4.0 }
  in
  let now = ref 0.0 in
  let d = D.create ~now:!now cfg in
  let seen = ref [] in
  let note tr = match tr with None -> () | Some tr -> seen := tr :: !seen in
  let rank = function D.Alive -> 0 | D.Suspect -> 1 | D.Dead -> 2 in
  let prober () =
    List.iter
      (fun ok ->
        Schedcheck.Mutex.atomically m "probe start" (fun () ->
            D.probe_started d);
        (* The RPC is in flight: everything else may interleave here. *)
        Schedcheck.yield "probe in flight";
        Schedcheck.Mutex.atomically m "probe done" (fun () ->
            let t = !now in
            note (if ok then D.probe_succeeded d ~now:t
                  else D.probe_failed d ~now:t)))
      probes
  in
  let ticker () =
    for _ = 1 to 3 do
      Schedcheck.Mutex.atomically m "advance and tick" (fun () ->
          now := !now +. 2.5;
          note (D.tick d ~now:!now))
    done
  in
  let check_transitions () =
    List.iter
      (fun tr ->
        (match tr.D.tr_cause with
        | `Success -> ()
        | `Failure | `Timeout ->
          check
            (rank tr.D.tr_to > rank tr.D.tr_from)
            "detector: failure/aging transition did not demote");
        check
          (tr.D.tr_to <> D.Alive || tr.D.tr_cause = `Success)
          "detector: revived without a successful heartbeat")
      !seen
  in
  Schedcheck.scenario ~invariant:check_transitions
    ~finale:(fun () ->
      check_transitions ();
      (* The ticker alone pushed age past dead_after_s: unless the very
         last recorded outcome is a success, the peer must not be
         Alive at the end. *)
      match !seen with
      | { D.tr_cause = `Success; _ } :: _ -> ()
      | _ ->
        check
          (D.state d <> D.Alive || List.for_all (fun ok -> ok) probes
           && !seen = [])
          "detector: alive at end without a closing success")
    [ ("prober", prober); ("ticker", ticker) ]
