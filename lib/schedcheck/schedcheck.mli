(** Deterministic schedule exploration for the engine's critical
    sections (DESIGN.md §5.3).

    The sanitizer ({!Sdb_check}) checks the schedules that actually
    run; this harness checks the ones the suite never hits.  A scenario
    is a handful of modeled threads written against virtual
    synchronization primitives ({!Mutex}, {!Cond}, and
    [Vlock_core.Make] over {!module-Sync} in [Scenarios]).  Every
    blocking operation is a {e scheduling point}; the explorer runs the
    scenario to completion once per schedule, backtracking depth-first
    over every choice of runnable thread, so the bounded interleaving
    space is enumerated exhaustively — dscheck-style stateless model
    checking, with replay.

    Detected per execution:
    - {b deadlock}: no thread is runnable but some have not finished;
    - {b invariant violation}: the scenario's invariant (checked after
      every scheduling step) or finale (checked once all threads
      completed) raised, or a modeled thread itself raised;
    - {b bound overrun}: an execution exceeded [max_steps] (a livelock,
      or a model that needs a smaller scenario).

    A failure report carries the schedule — the exact sequence of
    choices — and a human-readable trace; {!replay} re-runs a schedule
    deterministically, so a red run is a reproducible artifact, not a
    flake. *)

(** {1 Writing scenarios} *)

type scenario = {
  sc_threads : (string * (unit -> unit)) list;
      (** Modeled threads, started in order.  Code before a thread's
          first scheduling point runs at spawn; put synchronization
          first if it matters. *)
  sc_invariant : unit -> unit;
      (** Called from the scheduler after every step; raise to flag a
          violation.  Runs outside any modeled thread: use unlocked
          inspection (e.g. [Vlock_core]'s [inspect]), never a virtual
          primitive. *)
  sc_finale : unit -> unit;
      (** Called once when every thread has completed; raise to flag a
          violation (e.g. a member without an outcome, non-dense
          LSNs). *)
}

val scenario :
  ?invariant:(unit -> unit) ->
  ?finale:(unit -> unit) ->
  (string * (unit -> unit)) list ->
  scenario

val self : unit -> int
(** The running modeled thread's id (its index in [sc_threads]).  Only
    meaningful inside a modeled thread. *)

val yield : string -> unit
(** A pure scheduling point: lets every interleaving around this
    program point be explored.  The label shows up in traces. *)

val step : ?enabled:(unit -> bool) -> ?run:(unit -> unit) -> string -> unit
(** The primitive under {!yield} and the virtual mutex: a scheduling
    point that blocks while [enabled] is false and runs [run]
    atomically when scheduled.  Lets a scenario build its own guarded
    hand-offs (e.g. a phase that must wait for every other thread to
    drain) without spin loops that would blow up the schedule space. *)

(** Virtual mutex: [lock] is a scheduling point that blocks while the
    owner is another thread; [unlock] is immediate (an unlock commutes
    with every other thread's next step, so yielding there would only
    multiply equivalent schedules). *)
module Mutex : sig
  type t

  val create : string -> t
  val lock : t -> unit
  val unlock : t -> unit

  val atomically : t -> string -> (unit -> unit) -> unit
  (** [lock]; run; [unlock] as {e one} scheduling point.  Sound for a
      critical section that contains no blocking operation and touches
      only state guarded by this mutex — which is exactly the shape of
      the engine's short sections — and keeps the schedule space small
      enough to exhaust. *)
end

(** Virtual condition variable with broadcast semantics and no spurious
    wakeups (the conservative choice when hunting missed-wakeup
    deadlocks). *)
module Cond : sig
  type t

  val create : string -> t

  val wait : t -> Mutex.t -> unit
  (** Atomically release the mutex and park; re-acquiring after
      {!broadcast} is a scheduling point contended like any lock. *)

  val broadcast : t -> unit
end

(** {1 Exploring} *)

type trace_entry = { te_tid : int; te_thread : string; te_label : string }

type report = {
  r_schedule : int list;  (** choice indices; feed back into {!replay} *)
  r_trace : trace_entry list;
  r_blocked : (int * string) list;
      (** threads alive at the end (deadlock reports only) *)
}

type outcome =
  | Passed of { executions : int }
      (** Every schedule in the bounded space ran to completion with
          the invariant and finale holding. *)
  | Deadlocked of report
  | Violated of { exn_text : string; report : report }
  | Step_bound_exceeded of report
  | Schedule_bound_exceeded of { executions : int }

val explore :
  ?max_schedules:int ->
  (* default 200_000 *)
  ?max_steps:int ->
  (* default 20_000 per execution *)
  (unit -> scenario) ->
  outcome
(** [explore make] runs [make ()] once per schedule (state must be
    created inside [make] so each execution starts fresh) and searches
    the interleaving space depth-first.  Deterministic: same scenario,
    same outcome, same counts. *)

val replay : (unit -> scenario) -> schedule:int list -> outcome * trace_entry list
(** Re-run one schedule (typically [report.r_schedule] from a failure)
    and return its outcome plus the full trace. *)

val pp_outcome : outcome -> string
(** Multi-line rendering: verdict, schedule, and trace. *)
